#include <gtest/gtest.h>

#include "xbar/fault_model.hpp"
#include "xbar/rcs.hpp"

namespace remapd {
namespace {

TEST(Crossbar, ConstructionAndCellCount) {
  Crossbar xb(128, 128);
  EXPECT_EQ(xb.rows(), 128u);
  EXPECT_EQ(xb.cols(), 128u);
  EXPECT_EQ(xb.cell_count(), 16384u);
  EXPECT_EQ(xb.fault_count(), 0u);
  EXPECT_EQ(xb.fault_density(), 0.0);
  EXPECT_THROW(Crossbar(0, 4), std::invalid_argument);
}

TEST(Crossbar, InjectSingleFault) {
  Crossbar xb(8, 8);
  Rng rng(1);
  EXPECT_TRUE(xb.inject_fault(2, 3, CellFault::kStuckAt1, rng));
  EXPECT_EQ(xb.fault_at(2, 3), CellFault::kStuckAt1);
  EXPECT_EQ(xb.fault_count(), 1u);
  // Idempotent: a faulty cell is not re-typed.
  EXPECT_FALSE(xb.inject_fault(2, 3, CellFault::kStuckAt0, rng));
  EXPECT_EQ(xb.fault_at(2, 3), CellFault::kStuckAt1);
  EXPECT_THROW(xb.inject_fault(9, 0, CellFault::kStuckAt1, rng),
               std::out_of_range);
  EXPECT_FALSE(xb.inject_fault(0, 0, CellFault::kNone, rng));
}

TEST(Crossbar, StuckResistanceWithinBands) {
  Crossbar xb(16, 16);
  Rng rng(2);
  xb.inject_random_faults(64, 0.5, rng);
  const CellParams& p = xb.params();
  for (const auto& [r, c] : xb.faulty_cells()) {
    const double res = xb.stuck_resistance_at(r, c);
    if (xb.fault_at(r, c) == CellFault::kStuckAt1) {
      EXPECT_GE(res, p.sa1_r_lo);
      EXPECT_LE(res, p.sa1_r_hi);
    } else {
      EXPECT_GE(res, p.sa0_r_lo);
      EXPECT_LE(res, p.sa0_r_hi);
    }
  }
}

TEST(Crossbar, RandomInjectionCountExact) {
  Crossbar xb(32, 32);
  Rng rng(3);
  EXPECT_EQ(xb.inject_random_faults(50, 0.9, rng), 50u);
  EXPECT_EQ(xb.fault_count(), 50u);
  EXPECT_EQ(xb.faulty_cells().size(), 50u);
}

TEST(Crossbar, InjectionSaturatesAtFullArray) {
  Crossbar xb(4, 4);
  Rng rng(4);
  EXPECT_EQ(xb.inject_random_faults(100, 0.5, rng), 16u);
  EXPECT_EQ(xb.fault_density(), 1.0);
}

TEST(Crossbar, Sa0Sa1RatioApproximatelyNineToOne) {
  Crossbar xb(128, 128);
  Rng rng(5);
  xb.inject_random_faults(2000, 0.9, rng);
  const double sa0 = static_cast<double>(xb.fault_count(CellFault::kStuckAt0));
  const double sa1 = static_cast<double>(xb.fault_count(CellFault::kStuckAt1));
  EXPECT_NEAR(sa0 / (sa0 + sa1), 0.9, 0.03);
}

TEST(Crossbar, ClusteredInjectionIsMoreConcentrated) {
  // Clustered faults should have a smaller mean pairwise distance than
  // uniform faults (the [16] clustering property).
  auto mean_pairwise = [](const Crossbar& xb) {
    const auto cells = xb.faulty_cells();
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < cells.size(); ++i)
      for (std::size_t j = i + 1; j < cells.size(); ++j, ++n) {
        const double dr = static_cast<double>(cells[i].first) -
                          static_cast<double>(cells[j].first);
        const double dc = static_cast<double>(cells[i].second) -
                          static_cast<double>(cells[j].second);
        sum += std::sqrt(dr * dr + dc * dc);
      }
    return n ? sum / static_cast<double>(n) : 0.0;
  };

  double clustered = 0.0, uniform = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Crossbar a(128, 128), b(128, 128);
    Rng ra(seed), rb(seed + 100);
    a.inject_clustered_faults(100, 0.9, 1, ra);
    b.inject_random_faults(100, 0.9, rb);
    clustered += mean_pairwise(a);
    uniform += mean_pairwise(b);
  }
  EXPECT_LT(clustered, uniform * 0.8);
}

TEST(Crossbar, WriteCounterAccumulates) {
  Crossbar xb(4, 4);
  EXPECT_EQ(xb.array_writes(), 0u);
  xb.record_array_write();
  xb.record_array_write();
  EXPECT_EQ(xb.array_writes(), 2u);
}

// --------------------------------------------------------------------- Ima

TEST(Ima, PeripheralInventoryScales) {
  Ima ima(4, 128, 128);
  EXPECT_EQ(ima.size(), 4u);
  EXPECT_EQ(ima.peripherals().dacs, 4u * 128u);
  EXPECT_EQ(ima.peripherals().adcs, 4u);
  EXPECT_EQ(ima.peripherals().sample_holds, 4u * 128u);
  EXPECT_TRUE(ima.peripherals().has_bist);
}

TEST(Ima, MeanFaultDensity) {
  Ima ima(2, 10, 10);
  Rng rng(6);
  ima.crossbar(0).inject_random_faults(10, 0.5, rng);  // 10%
  EXPECT_NEAR(ima.mean_fault_density(), 0.05, 1e-9);
}

// -------------------------------------------------------------------- Tile

TEST(Tile, FlatCrossbarIndexing) {
  Tile tile(3, 2, 4, 8, 8);
  EXPECT_EQ(tile.id(), 3u);
  EXPECT_EQ(tile.num_imas(), 2u);
  EXPECT_EQ(tile.crossbars_per_tile(), 8u);
  EXPECT_NO_THROW(tile.crossbar(7));
  EXPECT_THROW(tile.crossbar(8), std::out_of_range);
  // Local index 5 lands in the second IMA.
  Rng rng(7);
  tile.crossbar(5).inject_fault(0, 0, CellFault::kStuckAt0, rng);
  EXPECT_EQ(tile.ima(1).crossbar(1).fault_count(), 1u);
}

// --------------------------------------------------------------------- Rcs

TEST(Rcs, GeometryAndIndexing) {
  RcsConfig cfg;
  cfg.tiles_x = 4;
  cfg.tiles_y = 4;
  cfg.imas_per_tile = 2;
  cfg.xbars_per_ima = 4;
  cfg.xbar_rows = cfg.xbar_cols = 16;
  Rcs rcs(cfg);
  EXPECT_EQ(rcs.num_tiles(), 16u);
  EXPECT_EQ(rcs.total_crossbars(), 128u);
  EXPECT_EQ(rcs.tile_of(0), 0u);
  EXPECT_EQ(rcs.tile_of(7), 0u);
  EXPECT_EQ(rcs.tile_of(8), 1u);
  EXPECT_EQ(rcs.tile_of(127), 15u);
}

TEST(Rcs, TileDistanceIsManhattan) {
  RcsConfig cfg;
  cfg.tiles_x = 4;
  cfg.tiles_y = 4;
  Rcs rcs(cfg);
  EXPECT_EQ(rcs.tile_distance(0, 0), 0u);
  EXPECT_EQ(rcs.tile_distance(0, 3), 3u);   // same row
  EXPECT_EQ(rcs.tile_distance(0, 15), 6u);  // corner to corner
  EXPECT_EQ(rcs.tile_distance(5, 10), rcs.tile_distance(10, 5));
}

TEST(Rcs, SizedForProvidesEnoughCrossbars) {
  for (std::size_t need : {1u, 10u, 100u, 322u, 1000u}) {
    RcsConfig cfg = RcsConfig::sized_for(need, 32, 32);
    EXPECT_GE(cfg.total_crossbars(), need) << need;
    EXPECT_GE(cfg.num_tiles(), 4u);
  }
}

TEST(Rcs, DensityQueriesMatchGroundTruth) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 2;
  cfg.xbar_rows = cfg.xbar_cols = 10;
  Rcs rcs(cfg);
  Rng rng(8);
  rcs.crossbar(0).inject_random_faults(10, 0.5, rng);  // density 0.1
  const auto densities = rcs.fault_densities();
  EXPECT_EQ(densities.size(), rcs.total_crossbars());
  EXPECT_NEAR(densities[0], 0.1, 1e-9);
  EXPECT_EQ(densities[1], 0.0);
  EXPECT_NEAR(rcs.mean_fault_density(),
              0.1 / static_cast<double>(rcs.total_crossbars()), 1e-9);
}

// ------------------------------------------------------------- FaultModel

TEST(FaultScenario, Constructors) {
  const FaultScenario ideal = FaultScenario::ideal();
  EXPECT_FALSE(ideal.enable_pre);
  EXPECT_FALSE(ideal.enable_post);

  const FaultScenario uni = FaultScenario::uniform(0.02);
  EXPECT_EQ(uni.high_density_lo, 0.02);
  EXPECT_EQ(uni.low_density_hi, 0.02);
  EXPECT_FALSE(uni.enable_post);

  const FaultScenario def = FaultScenario::paper_default();
  EXPECT_TRUE(def.enable_pre);
  EXPECT_TRUE(def.enable_post);
  EXPECT_DOUBLE_EQ(def.post_xbar_fraction, 0.01);
  EXPECT_DOUBLE_EQ(def.post_cell_fraction, 0.005);

  const FaultScenario comp = FaultScenario::paper_default_compressed(10);
  EXPECT_DOUBLE_EQ(comp.post_xbar_fraction, 0.05);  // x5 for 10 vs 50 epochs
  EXPECT_DOUBLE_EQ(comp.post_cell_fraction, def.post_cell_fraction);
}

TEST(FaultInjector, PreDeploymentRespectsNonUniformSplit) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 5;  // 25 tiles x 8 = 200 crossbars
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  Rng rng(9);
  FaultInjector injector(FaultScenario::paper_default(), rng);
  injector.inject_pre_deployment(rcs);

  std::size_t high = 0, over_limit = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    const double d = rcs.crossbar(x).fault_density();
    if (d > 0.004) ++high;
    if (d > 0.0105) ++over_limit;  // small slack over the 1% cap
  }
  // ~20% of crossbars should be in the high-density band.
  EXPECT_NEAR(static_cast<double>(high) / 200.0, 0.20, 0.07);
  EXPECT_EQ(over_limit, 0u);
}

TEST(FaultInjector, PostDeploymentAddsFaultsEachEpoch) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 4;
  cfg.xbar_rows = cfg.xbar_cols = 64;
  Rcs rcs(cfg);
  Rng rng(10);
  FaultScenario sc = FaultScenario::ideal();
  sc.enable_post = true;
  sc.post_xbar_fraction = 0.05;
  sc.post_cell_fraction = 0.01;
  FaultInjector injector(sc, rng);

  std::size_t before = 0;
  const std::size_t added = injector.inject_post_deployment(rcs);
  EXPECT_GT(added, 0u);
  std::size_t after = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    before += 0;
    after += rcs.crossbar(x).fault_count();
  }
  EXPECT_EQ(after, added);
}

TEST(FaultInjector, PostDeploymentBiasedTowardWrittenCrossbars) {
  RcsConfig cfg;
  cfg.tiles_x = cfg.tiles_y = 4;
  cfg.xbar_rows = cfg.xbar_cols = 32;
  Rcs rcs(cfg);
  // Crossbars 0..15 written heavily; the rest untouched.
  for (int w = 0; w < 500; ++w)
    for (XbarId x = 0; x < 16; ++x) rcs.crossbar(x).record_array_write();

  Rng rng(11);
  FaultScenario sc = FaultScenario::ideal();
  sc.enable_post = true;
  sc.post_xbar_fraction = 0.1;  // ~12 crossbars per call
  sc.post_cell_fraction = 0.01;
  FaultInjector injector(sc, rng);
  for (int e = 0; e < 10; ++e) injector.inject_post_deployment(rcs);

  std::size_t written_faults = 0, idle_faults = 0;
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
    if (x < 16) written_faults += rcs.crossbar(x).fault_count();
    else idle_faults += rcs.crossbar(x).fault_count();
  }
  EXPECT_GT(written_faults, idle_faults * 2);
}

TEST(FaultInjector, IdealScenarioInjectsNothing) {
  RcsConfig cfg;
  Rcs rcs(cfg);
  Rng rng(12);
  FaultInjector injector(FaultScenario::ideal(), rng);
  EXPECT_EQ(injector.inject_pre_deployment(rcs), 0u);
  EXPECT_EQ(injector.inject_post_deployment(rcs), 0u);
  EXPECT_EQ(rcs.mean_fault_density(), 0.0);
}

}  // namespace
}  // namespace remapd
