// Fig. 8 reproduction: scalability of Remap-D to larger / harder datasets —
// CIFAR-100-like (20 superclass-granularity classes, tighter class
// separation) and SVHN-like (digit recognition over clutter, more samples).
// Same pre+post fault configuration as Fig. 6.
//
// Paper shape: without protection the models lose ~33% (CIFAR-100); with
// Remap-D the loss shrinks to ~1.3% (CIFAR-100) and <0.5% (SVHN).

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"
#include "util/csv.hpp"

int main() {
  using namespace remapd;
  struct DatasetPlan {
    SynthKind kind;
    std::size_t train, test;
  };
  const DatasetPlan datasets[] = {
      {SynthKind::kCifar100, 512, 256},  // harder: more classes
      {SynthKind::kSvhn, 384, 128},      // "more images than CIFAR-10"
  };
  const char* models[] = {"vgg16", "resnet18", "squeezenet"};

  std::printf("== Fig. 8: scalability to CIFAR-100-like and SVHN-like ==\n\n");
  std::printf("%-14s %-10s %8s %8s %9s %10s %10s\n", "dataset", "model",
              "ideal", "none", "remap-d", "none_loss", "rd_loss");
  CsvWriter csv("fig8_scalability.csv");
  csv.header({"dataset", "model", "ideal", "none", "remap_d"});

  for (const auto& ds : datasets) {
    double none_loss = 0.0, rd_loss = 0.0;
    for (const char* model : models) {
      TrainerConfig base = recommended_config(model);
      base.data.kind = ds.kind;
      base.data.train = ds.train;
      base.data.test = ds.test;
      apply_env_overrides(base);
      base.faults = FaultScenario::paper_default_compressed(base.epochs);

      TrainerConfig ideal = base;
      ideal.faults = FaultScenario::ideal();
      const double acc_ideal = train_with_faults(ideal).final_test_accuracy;

      TrainerConfig none = base;
      none.policy = "none";
      const double acc_none = train_with_faults(none).final_test_accuracy;

      TrainerConfig remap = base;
      remap.policy = "remap-d";
      const double acc_rd = train_with_faults(remap).final_test_accuracy;

      std::printf("%-14s %-10s %8.3f %8.3f %9.3f %9.1f%% %9.1f%%\n",
                  synth_name(ds.kind), model, acc_ideal, acc_none, acc_rd,
                  100.0 * (acc_ideal - acc_none),
                  100.0 * (acc_ideal - acc_rd));
      std::fflush(stdout);
      csv.row(synth_name(ds.kind), model, acc_ideal, acc_none, acc_rd);
      none_loss += acc_ideal - acc_none;
      rd_loss += acc_ideal - acc_rd;
    }
    std::printf("  %s averages: none %.1f%%, remap-d %.1f%%\n\n",
                synth_name(ds.kind), 100.0 * none_loss / 3.0,
                100.0 * rd_loss / 3.0);
  }
  std::printf("paper shape: unprotected ~33%% loss (CIFAR-100); Remap-D "
              "~1.3%% (CIFAR-100), <0.5%% (SVHN)\n");
  std::printf("[fig8] wrote fig8_scalability.csv\n");
  return 0;
}
