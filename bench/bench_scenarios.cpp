// Scenario head-to-heads: each fault physics of the DESIGN.md §14 taxonomy
// run against the policy built for it AND a competing baseline, on one
// fixed bench-scale configuration:
//
//   transient  refresh (detect-and-refresh) vs none — refresh must win,
//              and must end every refresh round with zero live upsets.
//   ir-drop    one network trained under ideal interconnect, then deployed
//              (redeploy_interconnect) on resistive lines driven
//              single-sided vs alternating — the X-CHANGR comparison. The
//              alternating deployment calibrates to exactly the ideal
//              arithmetic while single-sided perturbs every weight by its
//              position gain, so the ordering gap is structural, not a
//              training-noise artifact. The in-training single-sided run
//              (policy none) is also recorded for the curves.
//   saf        remap-d vs drop-connect vs none — the paper's policy vs the
//              remap-free training baseline under permanent faults.
//
// The accuracy curves are float trajectories and therefore machine-shaped
// (the GEMM kernel dispatches AVX2 vs portable); what the perf gate pins
// EXACTLY are the machine-independent verdicts: the three ordering
// booleans and the 1-vs-4-thread bitwise-determinism check run on the two
// new scenarios (`deterministic`). scripts/check_bench.py compares the
// JSON (`--json PATH`) against bench/baselines/BENCH_scenarios.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "trainer/metrics.hpp"
#include "trainer/timing_model.hpp"
#include "util/parallel.hpp"
#include "xbar/ir_drop.hpp"

namespace {

using namespace remapd;

/// One bench-scale base config shared by every point: small enough that
/// the nine training runs finish in seconds, large enough that the
/// scenario effects dominate run-to-run noise at the fixed seed.
TrainerConfig base_config() {
  TrainerConfig cfg = recommended_config("resnet12");
  cfg.epochs = 6;
  cfg.data.train = 96;
  cfg.data.test = 64;
  cfg.seed = 42;
  apply_env_overrides(cfg);
  return cfg;
}

TrainerConfig transient_config(const std::string& policy) {
  TrainerConfig cfg = base_config();
  cfg.faults = FaultScenario::ideal();
  cfg.transients.enabled = true;
  cfg.transients.upset_rate = 0.004;
  cfg.policy = policy;
  return cfg;
}

TrainerConfig ir_drop_config(const std::string& policy) {
  TrainerConfig cfg = base_config();
  cfg.faults = FaultScenario::ideal();
  cfg.ir_drop.wire_ohms_per_cell = 800.0;
  cfg.policy = policy;
  return cfg;
}

/// The SAF trio runs squeezenet at the fig6 scale: the fire modules'
/// narrow squeeze layers make permanent faults genuinely destructive
/// there, so the remap-d-vs-none gap is wide (~25 accuracy points across
/// seeds) rather than a noise-level flip as on the skip-connected resnet.
TrainerConfig saf_config(const std::string& policy) {
  TrainerConfig cfg = recommended_config("squeezenet");
  cfg.seed = 42;
  apply_env_overrides(cfg);
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  cfg.policy = policy;
  return cfg;
}

struct Point {
  std::string scenario;
  std::string policy;
  TrainResult result;
  bool deterministic = true;  ///< only checked for the new scenarios
};

bool same_history(const TrainResult& a, const TrainResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    // Bitwise float compares: the determinism contract promises identical
    // arithmetic at any thread count, not merely close results.
    if (std::memcmp(&x.train_loss, &y.train_loss, sizeof(float)) != 0 ||
        std::memcmp(&x.train_accuracy, &y.train_accuracy, sizeof(double)) !=
            0 ||
        std::memcmp(&x.test_accuracy, &y.test_accuracy, sizeof(double)) != 0)
      return false;
    if (x.remaps != y.remaps || x.total_faults != y.total_faults ||
        x.new_upsets != y.new_upsets || x.live_upsets != y.live_upsets ||
        x.refreshed_cells != y.refreshed_cells ||
        x.refresh_cycles != y.refresh_cycles)
      return false;
  }
  return true;
}

/// Run a config at 4 threads; when `check_threads`, run again at 1 thread
/// and demand a bitwise-identical history.
Point run_point(const std::string& scenario, const TrainerConfig& cfg,
                bool check_threads) {
  Point p;
  p.scenario = scenario;
  p.policy = cfg.policy;
  set_parallel_threads(4);
  p.result = train_with_faults(cfg);
  if (check_threads) {
    set_parallel_threads(1);
    const TrainResult serial = train_with_faults(cfg);
    p.deterministic = same_history(p.result, serial);
    set_parallel_threads(4);
  }
  std::printf("%-10s %-14s final_acc=%.3f%s\n", scenario.c_str(),
              cfg.policy.c_str(), p.result.final_test_accuracy,
              check_threads
                  ? (p.deterministic ? "  [1v4-thread: bitwise]"
                                     : "  [1v4-thread: DIVERGED]")
                  : "");
  std::fflush(stdout);
  return p;
}

double final_acc(const std::vector<Point>& pts, const std::string& scenario,
                 const std::string& policy) {
  for (const Point& p : pts)
    if (p.scenario == scenario && p.policy == policy)
      return p.result.final_test_accuracy;
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "bench_scenarios: unknown flag %s\n",
                   flag.c_str());
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::printf("== Scenario head-to-heads ==\n"
              "   transient / ir-drop: resnet12, 6 epochs\n"
              "   saf                : squeezenet, fig6 scale\n\n");

  std::vector<Point> pts;
  pts.push_back(run_point("transient", transient_config("none"), false));
  pts.push_back(run_point("transient", transient_config("refresh"), true));
  pts.push_back(run_point("ir-drop", ir_drop_config("none"), true));
  pts.push_back(run_point("saf", saf_config("none"), false));
  pts.push_back(run_point("saf", saf_config("drop-connect"), false));
  pts.push_back(run_point("saf", saf_config("remap-d"), false));

  // X-CHANGR deployment comparison: train once under ideal interconnect,
  // deploy the SAME trained network on resistive lines under both drive
  // schemes, and read test accuracy through the deployed arithmetic. The
  // alternating scheme calibrates back to the exact ideal arithmetic, so
  // its accuracy equals the ideal deployment bit for bit.
  set_parallel_threads(4);
  TrainerConfig ideal_cfg = base_config();
  ideal_cfg.faults = FaultScenario::ideal();
  ideal_cfg.policy = "none";
  FaultAwareTrainer trained(ideal_cfg);
  const double acc_ideal = trained.run().final_test_accuracy;
  SynthSpec eval_spec = ideal_cfg.data;
  eval_spec.seed = ideal_cfg.seed;
  const Dataset eval_set = make_synthetic(eval_spec).test;
  IrDropConfig deploy_ir;
  deploy_ir.wire_ohms_per_cell = 800.0;
  trained.redeploy_interconnect(deploy_ir, LineScheme::kSingleSided);
  const double acc_static = evaluate_accuracy(trained.model(), eval_set);
  trained.redeploy_interconnect(deploy_ir, LineScheme::kAlternating);
  const double acc_alt = evaluate_accuracy(trained.model(), eval_set);
  std::printf("%-10s trained ideal, deployed: ideal=%.3f single-sided=%.3f "
              "alternating=%.3f\n",
              "ir-deploy", acc_ideal, acc_static, acc_alt);

  const bool refresh_wins = final_acc(pts, "transient", "refresh") >
                            final_acc(pts, "transient", "none");
  const bool altmap_wins = acc_alt > acc_static;
  const bool remapd_wins =
      final_acc(pts, "saf", "remap-d") > final_acc(pts, "saf", "none");
  bool deterministic = true;
  for (const Point& p : pts) deterministic = deterministic && p.deterministic;

  // Refresh cost in the timing model's currency: mean verify+rewrite
  // cycles per epoch against the pipeline's epoch total (same denominator
  // as the paper's 0.13 % BIST overhead claim).
  std::uint64_t refresh_cycles = 0;
  std::size_t epochs = 1;
  for (const Point& p : pts)
    if (p.scenario == "transient" && p.policy == "refresh") {
      for (const EpochRecord& e : p.result.history)
        refresh_cycles += e.refresh_cycles;
      epochs = p.result.history.empty() ? 1 : p.result.history.size();
    }
  const EpochTiming timing = estimate_epoch_timing(PipelineTimingConfig{});
  const double refresh_overhead =
      timing.overhead_percent(refresh_cycles / epochs);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\nrefresh beats none under transients : %s\n",
              refresh_wins ? "yes" : "NO");
  std::printf("alternating beats static under IR-drop: %s\n",
              altmap_wins ? "yes" : "NO");
  std::printf("remap-d beats none under SAF          : %s\n",
              remapd_wins ? "yes" : "NO");
  std::printf("1-vs-4-thread bitwise deterministic   : %s\n",
              deterministic ? "yes" : "NO");
  std::printf("refresh overhead: %.4f%% of epoch cycles\n", refresh_overhead);
  std::printf("wall: %.1fs\n", wall_seconds);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_scenarios: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"bench\":\"scenarios\",\"deterministic\":"
        << (deterministic ? "true" : "false") << ",\"orderings\":{"
        << "\"refresh_beats_none_transient\":"
        << (refresh_wins ? "true" : "false")
        << ",\"altmap_beats_static_irdrop\":"
        << (altmap_wins ? "true" : "false")
        << ",\"remapd_beats_none_saf\":" << (remapd_wins ? "true" : "false")
        << "},\"refresh_overhead_percent\":" << refresh_overhead
        << ",\"deploy\":{\"ideal\":" << acc_ideal
        << ",\"single_sided\":" << acc_static
        << ",\"alternating\":" << acc_alt << "},\"points\":[";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point& p = pts[i];
      const EpochRecord& last = p.result.last();
      if (i) out << ",";
      out << "{\"scenario\":\"" << p.scenario << "\",\"policy\":\""
          << p.policy << "\",\"final_acc\":"
          << p.result.final_test_accuracy
          << ",\"final_live_upsets\":" << last.live_upsets
          << ",\"refreshed_cells\":" << last.refreshed_cells
          << ",\"total_remaps\":" << p.result.total_remaps << "}";
    }
    out << "],\"wall_seconds\":" << wall_seconds << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool pass = refresh_wins && altmap_wins && remapd_wins &&
                    deterministic;
  if (!pass) std::printf("FAIL: expected ordering/determinism violated\n");
  return pass ? 0 : 1;
}
