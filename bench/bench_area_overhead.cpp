// §IV.C area reproduction: NeuroSim-style analytical breakdown of the RCS
// and the BIST module's area overhead, against the baselines' costs.
//
// Paper: BIST 0.61% vs AN-code 6.3% [10] vs Remap-T-10% 10% spare.

#include <cstdio>

#include "area/area_model.hpp"
#include "util/csv.hpp"

int main() {
  using namespace remapd;
  RcsAreaConfig cfg;  // 16 tiles x 2 IMAs x 4 crossbars of 128x128
  RcsAreaModel model(cfg);
  const AreaBreakdown b = model.compute();

  std::printf("== RCS area model (16 tiles, 2 IMAs/tile, 4x 128x128 "
              "crossbars/IMA) ==\n\n");
  std::printf("%-14s %16s %9s\n", "component", "area(um^2)", "share");
  CsvWriter csv("area_breakdown.csv");
  csv.header({"component", "um2", "share_percent"});
  const double total = b.total_with_bist();
  for (const auto& [name, um2] : model.report()) {
    std::printf("%-14s %16.0f %8.2f%%\n", name.c_str(), um2,
                100.0 * um2 / total);
    csv.row(name, um2, 100.0 * um2 / total);
  }
  std::printf("%-14s %16.0f\n\n", "total", total);

  std::printf("BIST gate inventory: %zu NAND2-equivalents per IMA "
              "(FSM %zu, counter %zu, flip logic %zu, density accumulator "
              "%zu, control %zu)\n\n",
              cfg.bist.total_gates(), cfg.bist.fsm_gates,
              cfg.bist.counter_gates, cfg.bist.flip_logic_gates,
              cfg.bist.density_accum_gates, cfg.bist.control_regs_gates);

  std::printf("area overhead comparison:\n");
  std::printf("  Remap-D (BIST only) : %5.2f%%   (paper: 0.61%%)\n",
              b.bist_overhead_percent());
  std::printf("  AN-code ECC [10]    : %5.2f%%\n",
              RcsAreaModel::an_code_overhead_percent());
  std::printf("  Remap-T-5%% spares   : %5.2f%%\n",
              RcsAreaModel::remap_t_overhead_percent(5.0));
  std::printf("  Remap-T-10%% spares  : %5.2f%%\n",
              RcsAreaModel::remap_t_overhead_percent(10.0));
  std::printf("[area] wrote area_breakdown.csv\n");
  return 0;
}
