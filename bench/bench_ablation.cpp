// Ablation studies on the design choices DESIGN.md calls out. One model
// (ResNet-18, which shows strong fault damage at this scale), the Fig. 6
// fault scenario, varying one knob at a time:
//
//   (a) weight-to-conductance mapping: single-array-with-bias (PytorX-
//       style, every stuck cell is a full-scale weight error) vs
//       differential-pair (a fault pins only one half);
//   (b) conductance saturation of the stored weights on/off;
//   (c) Remap-D driven by BIST *estimates* vs ground-truth densities
//       (does estimation error cost accuracy?);
//   (d) Remap-D sender threshold sweep.

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"
#include "util/csv.hpp"

namespace {

using namespace remapd;

TrainerConfig base_config() {
  TrainerConfig cfg = recommended_config("resnet18");
  apply_env_overrides(cfg);
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  return cfg;
}

double run(TrainerConfig cfg) {
  return train_with_faults(cfg).final_test_accuracy;
}

}  // namespace

int main() {
  std::printf("== Ablations (resnet18, Fig. 6 fault scenario) ==\n\n");
  CsvWriter csv("ablation.csv");
  csv.header({"ablation", "variant", "accuracy"});

  {
    TrainerConfig ideal = base_config();
    ideal.faults = FaultScenario::ideal();
    const double acc = run(ideal);
    std::printf("reference ideal accuracy: %.3f\n\n", acc);
    csv.row("reference", "ideal", acc);
  }

  std::printf("(a) weight-to-conductance mapping (policy: none)\n");
  for (auto [mode, name] :
       {std::pair{MappingMode::kSingleArrayBias, "single-array-bias"},
        std::pair{MappingMode::kDifferentialPair, "differential-pair"}}) {
    TrainerConfig cfg = base_config();
    cfg.mapping = mode;
    const double acc = run(cfg);
    std::printf("    %-20s : %.3f\n", name, acc);
    csv.row("mapping", name, acc);
  }

  std::printf("\n(b) conductance saturation of stored weights (policy: "
              "none)\n");
  for (bool sat : {false, true}) {
    TrainerConfig cfg = base_config();
    cfg.saturate_weights = sat;
    const double acc = run(cfg);
    std::printf("    saturation %-9s : %.3f\n", sat ? "on" : "off", acc);
    csv.row("saturation", sat ? "on" : "off", acc);
  }

  std::printf("\n(c) Remap-D density source\n");
  for (bool bist : {true, false}) {
    TrainerConfig cfg = base_config();
    cfg.policy = "remap-d";
    cfg.use_bist_estimates = bist;
    const double acc = run(cfg);
    std::printf("    %-20s : %.3f\n",
                bist ? "BIST estimates" : "ground truth", acc);
    csv.row("density-source", bist ? "bist" : "truth", acc);
  }

  std::printf("\n(d) unprotected vs remap-d (same seed, same faults)\n");
  for (const char* policy : {"none", "remap-d"}) {
    TrainerConfig cfg = base_config();
    cfg.policy = policy;
    const double acc = run(cfg);
    std::printf("    %-20s : %.3f\n", policy, acc);
    csv.row("policy", policy, acc);
  }

  std::printf("\n(e) wear-out generator: phenomenological (m, n) rates vs "
              "mechanistic Weibull endurance\n");
  for (bool mech : {false, true}) {
    for (const char* policy : {"none", "remap-d"}) {
      TrainerConfig cfg = base_config();
      cfg.faults.mechanistic_endurance = mech;
      cfg.policy = policy;
      const double acc = run(cfg);
      std::printf("    %-16s %-8s : %.3f\n",
                  mech ? "weibull" : "(m,n)-rates", policy, acc);
      csv.row(mech ? "wear-weibull" : "wear-rates", policy, acc);
    }
  }

  std::printf("\n[ablation] wrote ablation.csv\n");
  return 0;
}
