// Fig. 6 reproduction: accuracy after training the six CNN models in the
// presence of both pre-deployment (clustered, non-uniform, SA0:SA1 = 9:1)
// and post-deployment (0.5% new cells on 1% of crossbars per paper-epoch,
// time-compressed to our epoch count) faults, for every fault-tolerance
// solution the paper compares:
//
//   ideal | none | an-code | static | remap-ws | remap-t-5% | remap-t-10%
//   | remap-d
//
// Paper shape: Remap-D and Remap-T-10% near-ideal; AN-code loses 13.4% on
// average; static mapping and Remap-WS fail badly.

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"
#include "util/csv.hpp"

int main() {
  using namespace remapd;
  const char* models[] = {"vgg11", "vgg16", "vgg19",
                          "resnet12", "resnet18", "squeezenet"};
  const char* policies[] = {"none",      "an-code",    "static",
                            "remap-ws",  "remap-t-5",  "remap-t-10",
                            "remap-d"};

  std::printf("== Fig. 6: fault-tolerance solutions under pre+post faults "
              "==\n\n");
  std::printf("%-10s %7s", "model", "ideal");
  for (const char* p : policies) std::printf(" %11s", p);
  std::printf("\n");

  CsvWriter csv("fig6_solutions.csv");
  {
    std::vector<std::string> hdr = {"model", "ideal"};
    for (const char* p : policies) hdr.emplace_back(p);
    csv.header(hdr);
  }

  double an_loss = 0.0, remap_d_loss = 0.0, none_loss = 0.0;
  std::size_t counted = 0;
  for (const char* model : models) {
    TrainerConfig base = recommended_config(model);
    apply_env_overrides(base);
    base.faults = FaultScenario::paper_default_compressed(base.epochs);

    TrainerConfig ideal = base;
    ideal.faults = FaultScenario::ideal();
    const double acc_ideal = train_with_faults(ideal).final_test_accuracy;
    std::printf("%-10s %7.3f", model, acc_ideal);
    std::fflush(stdout);

    std::vector<double> row;
    for (const char* policy : policies) {
      TrainerConfig cfg = base;
      cfg.policy = policy;
      const TrainResult r = train_with_faults(cfg);
      row.push_back(r.final_test_accuracy);
      std::printf(" %11.3f", r.final_test_accuracy);
      std::fflush(stdout);
    }
    std::printf("\n");
    csv.row(model, acc_ideal, row[0], row[1], row[2], row[3], row[4],
            row[5], row[6]);

    none_loss += acc_ideal - row[0];
    an_loss += acc_ideal - row[1];
    remap_d_loss += acc_ideal - row[6];
    ++counted;
  }

  const double n = static_cast<double>(counted);
  std::printf("\naverage accuracy loss vs ideal:\n");
  std::printf("  none     : %5.1f%%\n", 100.0 * none_loss / n);
  std::printf("  an-code  : %5.1f%%   (paper: 13.4%%)\n",
              100.0 * an_loss / n);
  std::printf("  remap-d  : %5.1f%%   (paper: 0.91%%)\n",
              100.0 * remap_d_loss / n);
  std::printf("  remap-d improvement over an-code: %.1f%%   (paper: 12.5%%)\n",
              100.0 * (an_loss - remap_d_loss) / n);
  std::printf("[fig6] wrote fig6_solutions.csv\n");
  return 0;
}
