// Fig. 4 reproduction: crossbar column output current during BIST testing
// versus the number of (a) SA0 and (b) SA1 faults in a column, including
// stuck-resistance variation ([4] bands). The paper sweeps a 4x4 crossbar
// and notes the trend holds for larger arrays; we print both 4x4 and
// 128x128, plus the calibration check that inverts current back to a fault
// count.

#include <cstdio>

#include "bist/calibration.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace remapd;

void sweep(std::size_t rows, std::size_t max_faults, TestPattern pattern,
           const char* label, CsvWriter& csv) {
  CellParams p;
  Rng rng(2023);
  std::printf("--- %s test, %zux%zu crossbar column ---\n", label, rows,
              rows);
  std::printf("%8s %14s %14s %14s\n", "faults", "I_mean(uA)", "I_min(uA)",
              "I_max(uA)");
  const CellFault fault_type = pattern == TestPattern::kAllZero
                                   ? CellFault::kStuckAt1
                                   : CellFault::kStuckAt0;
  for (std::size_t k = 0; k <= max_faults; ++k) {
    double sum = 0.0, mn = 1e9, mx = -1e9;
    constexpr int kSamples = 50;
    for (int s = 0; s < kSamples; ++s) {
      // Sample one stuck resistance per fault within the variation band of
      // [4] and accumulate the column conductance.
      double conductance =
          static_cast<double>(rows - k) /
          (pattern == TestPattern::kAllZero ? p.r_off : p.r_on);
      for (std::size_t f = 0; f < k; ++f)
        conductance += 1.0 / p.sample_stuck_resistance(fault_type, rng);
      const double current = p.read_voltage * conductance;
      sum += current;
      mn = std::min(mn, current);
      mx = std::max(mx, current);
    }
    const double mean = sum / 50.0;
    std::printf("%8zu %14.4f %14.4f %14.4f\n", k, mean * 1e6, mn * 1e6,
                mx * 1e6);
    csv.row(label, rows, k, mean * 1e6, mn * 1e6, mx * 1e6);
  }
}

}  // namespace

int main() {
  using namespace remapd;
  std::printf("== Fig. 4: BIST column current vs fault count ==\n");
  std::printf("(SA1 band %.1f-%.1f kOhm, SA0 band %.1f-%.1f MOhm [4])\n\n",
              1.5, 3.0, 0.8, 3.0);
  CsvWriter csv("fig4_bist_current.csv");
  csv.header({"test", "rows", "faults", "mean_uA", "min_uA", "max_uA"});

  // Paper's illustration: 4x4 array, 0..4 faults.
  sweep(4, 4, TestPattern::kAllOne, "SA0", csv);
  std::printf("\n");
  sweep(4, 4, TestPattern::kAllZero, "SA1", csv);

  // Larger array (the paper: "observed for larger crossbars as well").
  std::printf("\n");
  sweep(128, 8, TestPattern::kAllOne, "SA0", csv);
  std::printf("\n");
  sweep(128, 8, TestPattern::kAllZero, "SA1", csv);

  // Calibration inversion: the current is a reliable fault-count indicator.
  std::printf("\n--- calibration inversion (128-row column, SA1) ---\n");
  CellParams p;
  BistCalibration cal(p, 128);
  bool all_exact = true;
  for (std::size_t k = 0; k <= 8; ++k) {
    const double i = cal.expected_current(k, TestPattern::kAllZero);
    const std::size_t est = cal.estimate_fault_count(i, TestPattern::kAllZero);
    if (est != k) all_exact = false;
    std::printf("faults=%zu  current=%.4f uA  estimated=%zu\n", k, i * 1e6,
                est);
  }
  std::printf("inversion exact at nominal R: %s\n", all_exact ? "yes" : "NO");
  std::printf("\n[fig4] wrote fig4_bist_current.csv\n");
  return 0;
}
