// §III.B.3 timing reproduction: the BIST FSM costs 130 ReRAM cycles per
// fault type (128 row-writes + 1 read + 1 output-processing) and 260 cycles
// total for a 128x128 array — a 0.13% overhead against one training epoch
// under the full-system evaluation model of [3], [14].

#include <cstdio>

#include "bist/controller.hpp"
#include "bist/march.hpp"
#include "core/fault_density_map.hpp"
#include "obs/report.hpp"
#include "telemetry/telemetry.hpp"
#include "trainer/timing_model.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "xbar/rcs.hpp"

int main() {
  using namespace remapd;
  std::printf("== BIST timing (Fig. 2 FSM) ==\n\n");

  std::printf("%10s %14s %14s\n", "array", "cycles", "time(us)");
  for (std::size_t rows : {16u, 32u, 64u, 128u, 256u}) {
    const std::uint64_t cycles = BistFsm::total_cycles(rows);
    std::printf("%7zux%-3zu %14llu %14.2f\n", rows, rows,
                static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) * kReramCycleNs / 1000.0);
  }

  // Cycle-accurate confirmation on a real crossbar survey.
  Crossbar xb(128, 128);
  BistController bist;
  const BistReport rep = bist.run(xb);
  std::printf("\nmeasured run on 128x128: %llu cycles (%.1f us)\n",
              static_cast<unsigned long long>(rep.cycles),
              rep.elapsed_ns / 1000.0);
  std::printf("paper: 130 (SA1) + 130 (SA0) = 260 cycles at 100 ns/cycle\n");

  // Training-time overhead: BIST runs once per epoch, all IMAs in parallel.
  // The denominator comes from the PipeLayer-style pipeline timing model
  // (CIFAR-scale epoch: 50k images streamed at the MVM initiation interval
  // plus per-batch row-by-row weight writes).
  PipelineTimingConfig tcfg;
  tcfg.images_per_epoch = static_cast<std::size_t>(
      env_int("REMAPD_EPOCH_IMAGES", 50000));
  const EpochTiming epoch = estimate_epoch_timing(tcfg);
  std::printf("\nepoch timing model: %llu compute + %llu write = %llu ReRAM "
              "cycles (%.1f ms)\n",
              static_cast<unsigned long long>(epoch.compute_cycles),
              static_cast<unsigned long long>(epoch.write_cycles),
              static_cast<unsigned long long>(epoch.total_cycles),
              epoch.milliseconds);
  std::printf("per-epoch BIST overhead: %llu / %llu cycles = %.3f%%   "
              "(paper: 0.13%%)\n",
              static_cast<unsigned long long>(rep.cycles),
              static_cast<unsigned long long>(epoch.total_cycles),
              epoch.overhead_percent(rep.cycles));

  // The conventional alternative: a March C- pass localizes every fault
  // but costs 10 ops/cell — far too slow to run at every epoch (§II).
  const std::uint64_t march = march_c_minus_cycles(128 * 128);
  std::printf("\nMarch C- on the same array: %llu cycles (%.0fx the density "
              "BIST; %.1f%% of an epoch)\n",
              static_cast<unsigned long long>(march),
              static_cast<double>(march) / static_cast<double>(rep.cycles),
              epoch.overhead_percent(march));

  // Endurance: the two BIST write passes vs the per-epoch weight-update
  // writes (one array write per batch; 391 batches at CIFAR scale).
  std::printf("BIST adds 2 array writes per epoch — negligible against the "
              "per-batch weight-update writes.\n");

  // With REMAPD_HEALTH set, survey a small faulted RCS and record one
  // health snapshot, so the bench's stream carries per-crossbar
  // BIST-estimate-vs-truth rows (the estimation-error table's input).
  if (obs::enabled()) {
    obs::Observatory& ob = obs::Observatory::instance();
    RcsConfig rcfg;
    rcfg.tiles_x = rcfg.tiles_y = 2;
    Rcs rcs(rcfg);
    Rng rng(7);
    std::size_t total_faults = 0;
    for (XbarId x = 0; x < rcs.total_crossbars(); ++x) {
      const std::size_t count = 11 * x;  // spread of densities
      rcs.crossbar(x).inject_random_faults(count, 0.9, rng);
      total_faults += rcs.crossbar(x).fault_count();
    }
    WeightMapper mapper(rcs);
    mapper.map_layers({{256, 256}});  // a few tasks so phases appear

    FaultDensityMap density;
    density.reset(rcs.total_crossbars());
    std::uint64_t cycles = 0;
    density.update(bist.survey(rcs, &cycles));

    obs::RunInfo info;
    info.model = "(none)";
    info.policy = "bist-timing-bench";
    info.dataset = "(synthetic faults)";
    info.crossbars = rcs.total_crossbars();
    info.tiles_x = rcfg.tiles_x;
    info.tiles_y = rcfg.tiles_y;
    info.xbar_rows = rcfg.xbar_rows;
    info.xbar_cols = rcfg.xbar_cols;
    ob.begin_run(info);

    obs::EpochObs eo;
    eo.total_faults = total_faults;
    eo.bist_cycles = cycles;
    ob.sample_epoch(eo, rcs, density, mapper);
  }

  if (telemetry::enabled())
    std::fputs(telemetry::summary_table().c_str(), stderr);
  return 0;
}
