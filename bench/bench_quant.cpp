// Quantized-conductance head-to-head: the two payoffs of narrow cell
// storage, measured against their fp32 baselines.
//
//   gemm      fp32 GemmAPack vs Int8APack on a 256^3 GEMM at 1 and 4
//             threads (median of 3). The int8 path accumulates in exact
//             int32, so its 1-vs-4-thread outputs must be byte-identical —
//             that verdict, and the >= 2x single-thread speedup ordering,
//             are what scripts/check_bench.py pins exactly. GFLOP/s floors
//             catch kernel regressions.
//   accuracy  resnet12 under the SAF trio (saf, saf+transient,
//             saf+ir-drop) trained fp32 vs 4-bit cells (+ 2/3-bit on saf
//             for the bits sweep), remap-d policy. The orderings gate that
//             4-bit training stays within 1 accuracy point of fp32 on
//             every trio member; the float curves themselves are
//             machine-shaped and not gated.
//
// JSON (--json PATH) is compared against bench/baselines/BENCH_quant.json.
// Exit 0 when every ordering and the determinism verdict hold, 1 otherwise.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "quant/quant.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/gemm_kernel.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "trainer/scenarios.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace remapd;

constexpr std::size_t kN = 256;  // cube GEMM dimension
constexpr std::size_t kLevels = 16;  // 4-bit cells drive the int8 scale

struct GemmPoint {
  std::string workload;
  int threads;
  double median_ms = 0.0;
  double gflops = 0.0;
};

template <typename Fn>
double median_ms_of_3(Fn&& fn) {
  double t[3];
  for (double& ti : t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    ti = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  }
  std::sort(t, t + 3);
  return t[1];
}

GemmPoint bench_fp32(const std::vector<float>& a, const std::vector<float>& b,
                     std::vector<float>& c, int threads) {
  set_parallel_threads(static_cast<std::size_t>(threads));
  GemmAPack pack;
  GemmPoint p{"gemm-fp32-256", threads};
  p.median_ms = median_ms_of_3([&] {
    pack.pack(kN, kN, 1.0f, StridedOperand{a.data(), kN, 1});
    pack.multiply(kN, b.data(), kN, 0.0f, c.data(), kN);
  });
  p.gflops = 2.0 * kN * kN * kN / (p.median_ms * 1e-3) / 1e9;
  return p;
}

GemmPoint bench_int8(const std::vector<float>& a, const std::vector<float>& b,
                     std::vector<float>& c, int threads, float a_scale) {
  set_parallel_threads(static_cast<std::size_t>(threads));
  Int8APack pack;
  GemmPoint p{"gemm-int8-256", threads};
  bool ok = true;
  p.median_ms = median_ms_of_3([&] {
    pack.pack(kN, kN, StridedOperand{a.data(), kN, 1}, a_scale);
    ok = pack.multiply(kN, StridedOperand{b.data(), kN, 1}, c.data(), kN) &&
         ok;
  });
  if (!ok) std::fprintf(stderr, "bench_quant: int8 multiply fell back!\n");
  // Same 2N^3 work accounting as the fp32 side (int MAC == FLOP here) so
  // the two columns compare directly.
  p.gflops = 2.0 * kN * kN * kN / (p.median_ms * 1e-3) / 1e9;
  return p;
}

/// Bench-scale resnet12 config under a scenario preset, optionally with
/// quantized cells (remap-d keeps the SAF runs trained, so the fp32-vs-bits
/// gap isolates quantization rather than fault collapse).
TrainerConfig quant_cfg(const std::string& fault_model, std::size_t bits) {
  // Preset scale (8 epochs x 256 train): long enough that training
  // genuinely converges, which the within-1pt gates need — stochastic
  // rounding is unbiased but only averages out over enough SGD steps.
  TrainerConfig cfg = recommended_config("resnet12");
  cfg.seed = 42;
  cfg.policy = "remap-d";
  if (bits > 0) {
    cfg.quant.enabled = true;
    cfg.quant.cell_bits = bits;
    cfg.quant.int8_gemm = true;
  }
  apply_env_overrides(cfg);
  apply_fault_model(cfg, fault_model);
  return cfg;
}

struct AccPoint {
  std::string workload;  ///< e.g. "resnet12-saf-4bit"
  int threads = 4;
  std::size_t cell_bits;
  double best_acc;
  bool deterministic = true;
};

bool same_history(const TrainResult& a, const TrainResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const EpochRecord& x = a.history[i];
    const EpochRecord& y = b.history[i];
    if (std::memcmp(&x.train_loss, &y.train_loss, sizeof(float)) != 0 ||
        std::memcmp(&x.train_accuracy, &y.train_accuracy, sizeof(double)) !=
            0 ||
        std::memcmp(&x.test_accuracy, &y.test_accuracy, sizeof(double)) != 0)
      return false;
    if (x.remaps != y.remaps || x.total_faults != y.total_faults)
      return false;
  }
  return true;
}

AccPoint run_acc(const std::string& fault_model, std::size_t bits,
                 bool check_threads) {
  AccPoint p;
  p.workload = "resnet12-" + fault_model + "-" +
               (bits ? std::to_string(bits) + "bit" : std::string("fp32"));
  p.cell_bits = bits;
  const TrainerConfig cfg = quant_cfg(fault_model, bits);
  set_parallel_threads(4);
  const TrainResult r = train_with_faults(cfg);
  // Best test accuracy reached during training: the single-epoch final
  // value wobbles by a few samples' worth on a bench-scale test set, while
  // the peak is the stable statistic the within-1pt gates compare.
  p.best_acc = r.final_test_accuracy;
  for (const EpochRecord& e : r.history)
    if (e.test_accuracy > p.best_acc) p.best_acc = e.test_accuracy;
  if (check_threads) {
    set_parallel_threads(1);
    const TrainResult serial = train_with_faults(cfg);
    p.deterministic = same_history(r, serial);
    set_parallel_threads(4);
  }
  std::printf("%-28s best_acc=%.3f%s\n", p.workload.c_str(), p.best_acc,
              check_threads ? (p.deterministic ? "  [1v4-thread: bitwise]"
                                               : "  [1v4-thread: DIVERGED]")
                            : "");
  std::fflush(stdout);
  return p;
}

double acc_of(const std::vector<AccPoint>& pts, const std::string& w) {
  for (const AccPoint& p : pts)
    if (p.workload == w) return p.best_acc;
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "bench_quant: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::printf("== Quantized conductance: int8 GEMM + accuracy vs bits ==\n"
              "   int8 kernel: %s\n\n",
              int8_kernel_name());

  // --- GEMM head-to-head ---
  const float w_max = 1.0f;
  const float a_scale = w_max / static_cast<float>(kLevels - 1);
  std::vector<float> a(kN * kN), b(kN * kN);
  Rng rng(7);
  // A on the 4-bit level grid (what quantized layers actually multiply);
  // B dense in [-1, 1].
  for (float& v : a)
    v = quant::level_decode(
        static_cast<std::uint8_t>(rng.uniform() * kLevels), kLevels, w_max);
  for (float& v : b) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);

  std::vector<float> c_fp(kN * kN), c_i8_t1(kN * kN), c_i8_t4(kN * kN);
  std::vector<GemmPoint> gemm_pts;
  gemm_pts.push_back(bench_fp32(a, b, c_fp, 1));
  gemm_pts.push_back(bench_fp32(a, b, c_fp, 4));
  gemm_pts.push_back(bench_int8(a, b, c_i8_t1, 1, a_scale));
  gemm_pts.push_back(bench_int8(a, b, c_i8_t4, 4, a_scale));
  const bool int8_bitwise =
      std::memcmp(c_i8_t1.data(), c_i8_t4.data(),
                  c_i8_t1.size() * sizeof(float)) == 0;
  const double fp32_1t = gemm_pts[0].gflops, int8_1t = gemm_pts[2].gflops;
  const double speedup_1t = int8_1t / fp32_1t;
  const bool int8_2x = speedup_1t >= 2.0;
  for (const GemmPoint& p : gemm_pts)
    std::printf("%-16s t%d  %8.2f ms  %8.2f GFLOP/s\n", p.workload.c_str(),
                p.threads, p.median_ms, p.gflops);
  std::printf("int8/fp32 single-thread speedup: %.2fx\n", speedup_1t);
  std::printf("int8 1-vs-4-thread C buffers   : %s\n\n",
              int8_bitwise ? "byte-identical" : "DIVERGED");

  // --- accuracy vs bits under the SAF trio ---
  std::vector<AccPoint> acc_pts;
  acc_pts.push_back(run_acc("saf", 0, false));
  acc_pts.push_back(run_acc("saf", 4, true));  // 1v4-thread training check
  acc_pts.push_back(run_acc("saf", 3, false));
  acc_pts.push_back(run_acc("saf", 2, false));
  acc_pts.push_back(run_acc("saf+transient", 0, false));
  acc_pts.push_back(run_acc("saf+transient", 4, false));
  acc_pts.push_back(run_acc("saf+ir-drop", 0, false));
  acc_pts.push_back(run_acc("saf+ir-drop", 4, false));

  const auto within_1pt = [&](const std::string& scen) {
    return acc_of(acc_pts, "resnet12-" + scen + "-4bit") >=
           acc_of(acc_pts, "resnet12-" + scen + "-fp32") - 0.01;
  };
  const bool w_saf = within_1pt("saf");
  const bool w_tr = within_1pt("saf+transient");
  const bool w_ir = within_1pt("saf+ir-drop");
  bool training_det = true;
  for (const AccPoint& p : acc_pts)
    training_det = training_det && p.deterministic;
  const bool deterministic = int8_bitwise && training_det;

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("\nint8 >= 2x fp32 (1 thread)          : %s\n",
              int8_2x ? "yes" : "NO");
  std::printf("4-bit within 1pt of fp32, saf         : %s\n",
              w_saf ? "yes" : "NO");
  std::printf("4-bit within 1pt, saf+transient       : %s\n",
              w_tr ? "yes" : "NO");
  std::printf("4-bit within 1pt, saf+ir-drop         : %s\n",
              w_ir ? "yes" : "NO");
  std::printf("bitwise deterministic (gemm+training) : %s\n",
              deterministic ? "yes" : "NO");
  std::printf("wall: %.1fs\n", wall_seconds);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_quant: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"bench\":\"quant\",\"kernel\":\"" << int8_kernel_name()
        << "\",\"deterministic\":" << (deterministic ? "true" : "false")
        << ",\"speedup_int8_vs_fp32_1t\":" << speedup_1t
        << ",\"orderings\":{\"int8_2x_fp32_1t\":"
        << (int8_2x ? "true" : "false")
        << ",\"four_bit_within_1pt_saf\":" << (w_saf ? "true" : "false")
        << ",\"four_bit_within_1pt_saf_transient\":"
        << (w_tr ? "true" : "false")
        << ",\"four_bit_within_1pt_saf_irdrop\":"
        << (w_ir ? "true" : "false") << "},\"points\":[";
    bool first = true;
    for (const GemmPoint& p : gemm_pts) {
      out << (first ? "" : ",") << "{\"workload\":\"" << p.workload
          << "\",\"threads\":" << p.threads << ",\"median_ms\":" << p.median_ms
          << ",\"gflops\":" << p.gflops << "}";
      first = false;
    }
    for (const AccPoint& p : acc_pts) {
      out << ",{\"workload\":\"" << p.workload << "\",\"threads\":"
          << p.threads << ",\"cell_bits\":" << p.cell_bits
          << ",\"best_acc\":" << p.best_acc << "}";
    }
    out << "],\"wall_seconds\":" << wall_seconds << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool pass = int8_2x && w_saf && w_tr && w_ir && deterministic;
  if (!pass) std::printf("FAIL: expected ordering/determinism violated\n");
  return pass ? 0 : 1;
}
