// §III.B.1 architectural comparison: plain mesh vs concentrated mesh for
// the RCS interconnect. The paper adopts a c-mesh because it cuts the
// router count (and thus area/energy) and the hop count while keeping
// efficient XY-tree multicast — this bench quantifies all three, plus a
// flit-accurate broadcast latency measurement on the c-mesh.

#include <cstdio>

#include "noc/network.hpp"
#include "noc/topology.hpp"

int main() {
  using namespace remapd::noc;

  std::printf("== Mesh vs concentrated mesh (c-mesh) ==\n\n");
  std::printf("%8s | %8s %8s %9s %9s %10s | %8s %8s %9s %9s %10s\n",
              "tiles", "routers", "avg_hop", "max_hop", "bc_links",
              "rel_area", "routers", "avg_hop", "max_hop", "bc_links",
              "rel_area");
  std::printf("%8s | %46s | %46s\n", "", "plain mesh", "c-mesh");

  for (std::size_t dim : {4u, 8u, 16u}) {
    const TopologyStats mesh = analyze_mesh(dim, dim);
    const TopologyStats cmesh = analyze_cmesh(dim, dim);
    std::printf("%4zux%-3zu | %8zu %8.2f %9zu %9zu %10.0f | %8zu %8.2f "
                "%9zu %9zu %10.0f\n",
                dim, dim, mesh.routers, mesh.avg_hops, mesh.max_hops,
                mesh.broadcast_tree_links, mesh.relative_router_area,
                cmesh.routers, cmesh.avg_hops, cmesh.max_hops,
                cmesh.broadcast_tree_links, cmesh.relative_router_area);
  }

  std::printf("\nc-mesh advantage at 8x8 tiles: 4x fewer routers, ~%.0f%% "
              "lower average hop count,\n~%.0f%% lower broadcast tree size "
              "(per-router area grows with port count but total shrinks).\n",
              100.0 * (1.0 - analyze_cmesh(8, 8).avg_hops /
                                 analyze_mesh(8, 8).avg_hops),
              100.0 * (1.0 - static_cast<double>(
                                 analyze_cmesh(8, 8).broadcast_tree_links) /
                                 analyze_mesh(8, 8).broadcast_tree_links));

  // Flit-accurate broadcast latency on the c-mesh (the remap-request path).
  std::printf("\nflit-level broadcast latency (c-mesh, corner source):\n");
  for (std::size_t dim : {4u, 8u, 16u}) {
    NocConfig cfg;
    cfg.geometry = CmeshGeometry{dim, dim};
    Network net(cfg);
    const PacketId id =
        net.inject(PacketKind::kRemapRequest, 0, kBroadcast, 1);
    net.run_until_idle();
    std::printf("  %2zux%-2zu tiles: last delivery at cycle %llu\n", dim,
                dim,
                static_cast<unsigned long long>(net.stats(id).latency()));
  }
  return 0;
}
