// Fig. 7 reproduction: Remap-D accuracy for VGG19 and ResNet-12 under
// different post-deployment fault scenarios — m% new faulty cells appear on
// n% of the crossbars after each (paper) epoch, m in {0.1, 0.5, 1}%, n in
// {0.1, 1, 2}%. Per-epoch rates are time-compressed to our epoch count so
// the cumulative wear-out exposure matches the paper's 50-epoch training.
//
// Paper shape: accuracy degrades gracefully and monotonically in (m, n);
// worst case (m=1%, n=2%) loses only ~2.5% with Remap-D.

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"
#include "util/csv.hpp"

int main() {
  using namespace remapd;
  const char* models[] = {"vgg19", "resnet12"};
  const double ms[] = {0.001, 0.005, 0.01};
  const double ns[] = {0.001, 0.01, 0.02};

  std::printf("== Fig. 7: Remap-D under post-deployment fault sweeps ==\n\n");
  CsvWriter csv("fig7_postfault_sweep.csv");
  csv.header({"model", "m_pct", "n_pct", "accuracy", "ideal"});

  for (const char* model : models) {
    TrainerConfig base = recommended_config(model);
    apply_env_overrides(base);

    TrainerConfig ideal_cfg = base;
    ideal_cfg.faults = FaultScenario::ideal();
    const double ideal = train_with_faults(ideal_cfg).final_test_accuracy;

    std::printf("--- %s (ideal %.3f) ---\n", model, ideal);
    std::printf("%8s", "m\\n");
    for (double n : ns) std::printf(" %9.1f%%", 100.0 * n);
    std::printf("\n");

    for (double m : ms) {
      std::printf("%7.1f%%", 100.0 * m);
      for (double n : ns) {
        TrainerConfig cfg = base;
        cfg.policy = "remap-d";
        // Pre-deployment as in Fig. 6; post rates (m, n) compressed.
        cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
        cfg.faults.post_cell_fraction = m;
        cfg.faults.post_xbar_fraction =
            std::min(1.0, n * 50.0 / static_cast<double>(cfg.epochs));
        const double acc = train_with_faults(cfg).final_test_accuracy;
        std::printf(" %10.3f", acc);
        std::fflush(stdout);
        csv.row(model, 100.0 * m, 100.0 * n, acc, ideal);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("paper shape: graceful monotone degradation; worst case "
              "(m=1%%, n=2%%) loss ~2.5%%\n");
  std::printf("[fig7] wrote fig7_postfault_sweep.csv\n");
  return 0;
}
