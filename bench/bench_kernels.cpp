// Microbenchmarks (google-benchmark) of the library's hot kernels: GEMM,
// im2col, fault injection, analog column reads, BIST runs, fault-view
// construction, and NoC cycle stepping. These bound the wall-clock cost of
// the figure-reproduction benches.

#include <benchmark/benchmark.h>

#include "bist/controller.hpp"
#include "noc/network.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "xbar/mapper.hpp"

namespace {

using namespace remapd;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  ConvGeom g{8, 16, 16, 3, 3, 1, 1};
  Rng rng(2);
  Tensor img = Tensor::randn(Shape{8, 16, 16}, rng);
  std::vector<float> col(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(img.data(), g, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_FaultInjection(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    Crossbar xb(128, 128);
    xb.inject_clustered_faults(164, 0.9, 2, rng);  // 1% density
    benchmark::DoNotOptimize(xb.fault_count());
  }
}
BENCHMARK(BM_FaultInjection);

void BM_ColumnCurrents(benchmark::State& state) {
  Crossbar xb(128, 128);
  Rng rng(4);
  xb.inject_random_faults(164, 0.9, rng);
  for (auto _ : state) {
    auto currents = all_column_currents(xb, TestPattern::kAllZero);
    benchmark::DoNotOptimize(currents.data());
  }
}
BENCHMARK(BM_ColumnCurrents);

void BM_BistRun(benchmark::State& state) {
  Crossbar xb(128, 128);
  Rng rng(5);
  xb.inject_random_faults(164, 0.9, rng);
  BistController bist;
  for (auto _ : state) {
    const BistReport rep = bist.run(xb);
    benchmark::DoNotOptimize(rep.density_estimate);
  }
}
BENCHMARK(BM_BistRun);

void BM_BuildFaultView(benchmark::State& state) {
  RcsConfig cfg = RcsConfig::sized_for(80, 32, 32);
  Rcs rcs(cfg);
  WeightMapper mapper(rcs);
  mapper.map_layers({{64, 576}});
  Rng rng(6);
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    rcs.crossbar(x).inject_random_faults(10, 0.9, rng);
  for (auto _ : state) {
    FaultView v = mapper.build_fault_view(0, Phase::kBackward, 0.5f);
    benchmark::DoNotOptimize(v.clamps.data());
  }
}
BENCHMARK(BM_BuildFaultView);

void BM_NocBroadcast(benchmark::State& state) {
  using namespace remapd::noc;
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};
  for (auto _ : state) {
    Network net(cfg);
    net.inject(PacketKind::kRemapRequest, 0, kBroadcast, 1);
    benchmark::DoNotOptimize(net.run_until_idle());
  }
}
BENCHMARK(BM_NocBroadcast);

void BM_NocWeightTransfer(benchmark::State& state) {
  using namespace remapd::noc;
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};
  for (auto _ : state) {
    Network net(cfg);
    net.inject(PacketKind::kWeightTransfer, 0, 63, 1024);
    benchmark::DoNotOptimize(net.run_until_idle());
  }
}
BENCHMARK(BM_NocWeightTransfer);

}  // namespace

BENCHMARK_MAIN();
