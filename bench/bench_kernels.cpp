// Microbenchmarks (google-benchmark) of the library's hot kernels: GEMM,
// im2col, fault injection, analog column reads, BIST runs, fault-view
// construction, and NoC cycle stepping. These bound the wall-clock cost of
// the figure-reproduction benches.
//
// `--json PATH` switches to a handwritten micro-set covering the packed
// GEMM kernel's three driver paths (NN/NT/TN at 256^3, with GFLOP/s), the
// fused conv forward/backward, and im2col, at 1 and 4 threads with a
// bitwise cross-thread determinism verdict — the BENCH_kernels.json
// perf-trajectory record that scripts/check_bench.py gates on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bist/controller.hpp"
#include "nn/conv2d.hpp"
#include "noc/network.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/im2col.hpp"
#include "util/parallel.hpp"
#include "xbar/mapper.hpp"

namespace {

using namespace remapd;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  ConvGeom g{8, 16, 16, 3, 3, 1, 1};
  Rng rng(2);
  Tensor img = Tensor::randn(Shape{8, 16, 16}, rng);
  std::vector<float> col(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(img.data(), g, col.data());
    benchmark::DoNotOptimize(col.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_FaultInjection(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    Crossbar xb(128, 128);
    xb.inject_clustered_faults(164, 0.9, 2, rng);  // 1% density
    benchmark::DoNotOptimize(xb.fault_count());
  }
}
BENCHMARK(BM_FaultInjection);

void BM_ColumnCurrents(benchmark::State& state) {
  Crossbar xb(128, 128);
  Rng rng(4);
  xb.inject_random_faults(164, 0.9, rng);
  for (auto _ : state) {
    auto currents = all_column_currents(xb, TestPattern::kAllZero);
    benchmark::DoNotOptimize(currents.data());
  }
}
BENCHMARK(BM_ColumnCurrents);

void BM_BistRun(benchmark::State& state) {
  Crossbar xb(128, 128);
  Rng rng(5);
  xb.inject_random_faults(164, 0.9, rng);
  BistController bist;
  for (auto _ : state) {
    const BistReport rep = bist.run(xb);
    benchmark::DoNotOptimize(rep.density_estimate);
  }
}
BENCHMARK(BM_BistRun);

void BM_BuildFaultView(benchmark::State& state) {
  RcsConfig cfg = RcsConfig::sized_for(80, 32, 32);
  Rcs rcs(cfg);
  WeightMapper mapper(rcs);
  mapper.map_layers({{64, 576}});
  Rng rng(6);
  for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
    rcs.crossbar(x).inject_random_faults(10, 0.9, rng);
  for (auto _ : state) {
    FaultView v = mapper.build_fault_view(0, Phase::kBackward, 0.5f);
    benchmark::DoNotOptimize(v.clamps.data());
  }
}
BENCHMARK(BM_BuildFaultView);

void BM_NocBroadcast(benchmark::State& state) {
  using namespace remapd::noc;
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};
  for (auto _ : state) {
    Network net(cfg);
    net.inject(PacketKind::kRemapRequest, 0, kBroadcast, 1);
    benchmark::DoNotOptimize(net.run_until_idle());
  }
}
BENCHMARK(BM_NocBroadcast);

void BM_NocWeightTransfer(benchmark::State& state) {
  using namespace remapd::noc;
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};
  for (auto _ : state) {
    Network net(cfg);
    net.inject(PacketKind::kWeightTransfer, 0, 63, 1024);
    benchmark::DoNotOptimize(net.run_until_idle());
  }
}
BENCHMARK(BM_NocWeightTransfer);

// ---------------------------------------------------------------------------
// --json micro-set (BENCH_kernels.json)
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

/// Median-of-3 wall-clock seconds for `fn`.
template <typename Fn>
double time_it(Fn&& fn) {
  std::vector<double> runs;
  for (int r = 0; r < 3; ++r) {
    const auto t0 = Clock::now();
    fn();
    runs.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

struct KernelPoint {
  std::string workload;
  std::size_t threads;
  double median_ms;
  double gflops;  ///< 0 when the workload has no closed-form flop count
};

/// One micro-workload: runs `fn` (which must leave its result in `out`),
/// records a timing point, and cross-checks `out` bitwise against the
/// serial run.
struct Micro {
  const char* name;
  double flops;  // per single execution; 0 = no GFLOP/s reported
  std::function<void()> fn;
  const std::vector<float>* out;
  std::vector<float> serial;
};

int run_json_microset(const std::string& json_path) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  constexpr std::size_t kN = 256;

  Rng rng(11);
  const Tensor a = Tensor::randn(Shape{kN, kN}, rng);
  const Tensor b = Tensor::randn(Shape{kN, kN}, rng);
  std::vector<float> c_nn(kN * kN), c_nt(kN * kN), c_tn(kN * kN);
  const double cube_flops = 2.0 * kN * kN * kN;

  const Tensor cx = Tensor::randn(Shape{16, 3, 32, 32}, rng);
  Rng crng(7);
  Conv2d conv(3, 32, 3, 1, 1, crng);
  Tensor cdy = Tensor::zeros(Shape{16, 32, 32, 32});
  for (std::size_t i = 0; i < cdy.numel(); i += 97) cdy[i] = 1.0f;
  std::vector<float> conv_y, conv_dx;

  const ConvGeom ig{8, 16, 16, 3, 3, 1, 1};
  const Tensor img = Tensor::randn(Shape{8, 16, 16}, rng);
  std::vector<float> col(ig.col_rows() * ig.col_cols());

  std::vector<Micro> micros;
  micros.push_back({"gemm_nn_256", cube_flops,
                    [&] {
                      gemm(false, false, kN, kN, kN, 1.0f, a.data(), kN,
                           b.data(), kN, 0.0f, c_nn.data(), kN);
                    },
                    &c_nn,
                    {}});
  micros.push_back({"gemm_nt_256", cube_flops,
                    [&] {
                      gemm(false, true, kN, kN, kN, 1.0f, a.data(), kN,
                           b.data(), kN, 0.0f, c_nt.data(), kN);
                    },
                    &c_nt,
                    {}});
  micros.push_back({"gemm_tn_256", cube_flops,
                    [&] {
                      gemm(true, false, kN, kN, kN, 1.0f, a.data(), kN,
                           b.data(), kN, 0.0f, c_tn.data(), kN);
                    },
                    &c_tn,
                    {}});
  micros.push_back({"conv_fwd", 0.0,
                    [&] {
                      const Tensor y = conv.forward(cx, /*train=*/true);
                      conv_y.assign(y.data(), y.data() + y.numel());
                    },
                    &conv_y,
                    {}});
  micros.push_back({"conv_bwd", 0.0,
                    [&] {
                      for (Param* p : conv.params()) p->zero_grad();
                      const Tensor dx = conv.backward(cdy);
                      conv_dx.assign(dx.data(), dx.data() + dx.numel());
                    },
                    &conv_dx,
                    {}});
  micros.push_back({"im2col", 0.0,
                    [&] {
                      for (int r = 0; r < 64; ++r)
                        im2col(img.data(), ig, col.data());
                    },
                    &col,
                    {}});

  std::vector<KernelPoint> points;
  bool deterministic = true;
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(n);
    // conv_bwd needs a fresh train-mode forward under THIS thread count so
    // its cached im2col buffers exist; conv_fwd (run first) provides it.
    for (Micro& m : micros) {
      const double s = time_it(m.fn);
      if (n == 1) {
        m.serial = *m.out;
      } else if (m.serial.size() != m.out->size() ||
                 std::memcmp(m.serial.data(), m.out->data(),
                             m.serial.size() * sizeof(float)) != 0) {
        std::printf("FAIL: %s result differs at %zu threads\n", m.name, n);
        deterministic = false;
      }
      points.push_back(
          {m.name, n, s * 1e3, m.flops > 0.0 ? m.flops / s * 1e-9 : 0.0});
      std::printf("%-14s %2zu threads  %10.3f ms", m.name, n, s * 1e3);
      if (m.flops > 0.0) std::printf("  %8.2f GFLOP/s", m.flops / s * 1e-9);
      std::printf("\n");
    }
  }
  std::printf("results bitwise-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO");

  std::ostringstream os;
  os << "{\"bench\":\"kernels\",\"hardware_threads\":" << hw
     << ",\"kernel\":\"" << gemm_kernel_name() << "\",\"deterministic\":"
     << (deterministic ? "true" : "false") << ",\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const KernelPoint& p = points[i];
    os << (i ? "," : "") << "{\"workload\":\"" << p.workload
       << "\",\"threads\":" << p.threads << ",\"median_ms\":" << p.median_ms;
    if (p.gflops > 0.0) os << ",\"gflops\":" << p.gflops;
    os << "}";
  }
  os << "]}";
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n",
                 json_path.c_str());
    return 2;
  }
  out << os.str() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      return run_json_microset(argv[i + 1]);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
