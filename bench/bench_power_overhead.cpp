// Conclusion-paragraph power claim: "the additional traffic introduces less
// than 0.5% power overhead". Energy model over a paper-scale epoch
// (CIFAR-10: 50k images, batch 128) for a fully mapped model, against the
// remap round's NoC traffic + weight-rewrite energy.

#include <cstdio>

#include "area/energy_model.hpp"
#include "noc/traffic.hpp"
#include "util/rng.hpp"

int main() {
  using namespace remapd;
  using namespace remapd::noc;

  // Paper-scale workload: ~320 mapped tasks (forward+backward blocks of a
  // mid-size CNN on 128x128 arrays), 50k images, 391 batches.
  const std::size_t num_tasks = 320;
  const std::size_t images = 50000, batches = 391;
  const EpochWorkload w =
      canonical_epoch_workload(num_tasks, images, batches, 128, 128);

  RcsEnergyModel model;
  const EnergyBreakdown epoch = model.epoch_energy(w, num_tasks, 260);

  std::printf("== Power overhead of Remap-D traffic ==\n\n");
  std::printf("epoch energy breakdown (uJ):\n");
  std::printf("  compute (MVM+DAC+ADC): %12.1f\n", epoch.compute_pj / 1e6);
  std::printf("  weight-update writes : %12.1f\n", epoch.write_pj / 1e6);
  std::printf("  NoC training traffic : %12.1f\n", epoch.traffic_pj / 1e6);
  std::printf("  eDRAM buffering      : %12.1f\n", epoch.buffer_pj / 1e6);
  std::printf("  BIST survey          : %12.1f\n", epoch.bist_pj / 1e6);
  std::printf("  total                : %12.1f\n\n", epoch.total_pj() / 1e6);

  // Remap rounds of growing size, traffic measured on the flit simulator.
  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};
  const std::size_t flits = weight_transfer_flits(128, 128);
  std::printf("%8s %14s %14s %14s\n", "pairs", "flit-hops", "remap(uJ)",
              "overhead");
  for (std::size_t pairs : {1u, 2u, 4u, 8u}) {
    std::vector<NodeId> senders;
    std::vector<std::vector<NodeId>> responders;
    std::vector<RemapPair> rp;
    for (std::size_t i = 0; i < pairs; ++i) {
      const NodeId s = i * 8, r = i * 8 + 2;
      senders.push_back(s);
      responders.push_back({r});
      rp.push_back(RemapPair{s, r});
    }
    const RemapTrafficResult res =
        simulate_remap_protocol(cfg, senders, responders, rp, flits);
    const double remap_pj = model.remap_energy_pj(
        res.flit_hops, pairs * 2 * 128 * 128);  // both arrays rewritten
    std::printf("%8zu %14llu %14.2f %13.4f%%\n", pairs,
                static_cast<unsigned long long>(res.flit_hops),
                remap_pj / 1e6,
                model.remap_overhead_percent(epoch, remap_pj));
  }

  std::printf("\npaper claim: additional traffic < 0.5%% power overhead — "
              "holds with a wide margin even at 8 parallel remaps/epoch.\n");
  return 0;
}
