// Throughput benchmark for the deterministic parallel layer: times a large
// gemm and a conv-dominated training step at 1 thread, 4 threads, and the
// hardware's native width, and verifies the results are bitwise identical
// across thread counts (the layer's central guarantee — speed must never
// change the numbers).
//
// Prints wall-clock speedups relative to serial. On a single-core host the
// speedups will hover around 1.0x (the pool adds only scheduling overhead);
// the determinism checks are meaningful everywhere.
//
// `--json PATH` additionally writes the run as a flat JSON record
// (per-thread-count median ms, GFLOP/s for the gemm, determinism verdict)
// — the BENCH_gemm.json perf-trajectory format CI archives per commit.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nn/conv2d.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace remapd;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Median-of-3 wall-clock seconds for `fn`.
template <typename Fn>
double time_it(Fn&& fn) {
  std::vector<double> runs;
  for (int r = 0; r < 3; ++r) {
    const auto t0 = Clock::now();
    fn();
    runs.push_back(seconds_since(t0));
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

struct Workload {
  const char* name;
  double serial_s = 0.0;
  Tensor serial_result{};
};

/// One timed (workload, thread-count) point for the JSON record.
struct JsonPoint {
  const char* workload;
  std::size_t threads;
  double median_ms;
  double speedup;
  double gflops;  ///< 0 when the workload has no closed-form flop count
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "bench_gemm: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 4};
  if (hw != 1 && hw != 4) counts.push_back(hw);

  std::printf("== Parallel layer throughput (hardware threads: %u) ==\n\n",
              hw);

  // Workload A: one large gemm (512x512x512 — the shape class of the fc /
  // im2col matmuls), plus a 256^3 point (the smallest "square, cache-
  // resident panel" shape the perf gate tracks GFLOP/s floors on).
  Rng rng(2024);
  const Tensor ga = Tensor::randn(Shape{512, 512}, rng);
  const Tensor gb = Tensor::randn(Shape{512, 512}, rng);
  const Tensor ha = Tensor::randn(Shape{256, 256}, rng);
  const Tensor hb = Tensor::randn(Shape{256, 256}, rng);

  // Workload B: conv-dominated training step — forward + backward of a
  // 3->32 channel 3x3 conv over a 16-sample batch of 32x32 images, the
  // per-sample loops the layer parallelizes inside Conv2d.
  const Tensor cx = Tensor::randn(Shape{16, 3, 32, 32}, rng);

  Workload gemm_w{"gemm 512^3"};
  Workload gemm256_w{"gemm 256^3"};
  Workload conv_w{"conv fwd+bwd (16x3x32x32 -> 32ch)"};

  // n^3 gemm: one multiply + one add per inner-product step.
  const double gemm_flops = 2.0 * 512.0 * 512.0 * 512.0;
  const double gemm256_flops = 2.0 * 256.0 * 256.0 * 256.0;
  std::vector<JsonPoint> points;

  std::printf("%-36s %8s %12s %9s\n", "workload", "threads", "median_ms",
              "speedup");
  for (const std::size_t n : counts) {
    set_parallel_threads(n);

    Tensor gc;
    const double gemm_s = time_it([&] { gc = matmul(ga, gb); });
    if (n == 1) {
      gemm_w.serial_s = gemm_s;
      gemm_w.serial_result = gc;
    } else if (!bitwise_equal(gc, gemm_w.serial_result)) {
      std::printf("FAIL: gemm result differs at %zu threads\n", n);
      return 1;
    }
    std::printf("%-36s %8zu %12.2f %8.2fx\n", gemm_w.name, n, gemm_s * 1e3,
                gemm_w.serial_s / gemm_s);
    points.push_back({"gemm_512", n, gemm_s * 1e3, gemm_w.serial_s / gemm_s,
                      gemm_flops / gemm_s * 1e-9});

    Tensor hc;
    const double gemm256_s = time_it([&] { hc = matmul(ha, hb); });
    if (n == 1) {
      gemm256_w.serial_s = gemm256_s;
      gemm256_w.serial_result = hc;
    } else if (!bitwise_equal(hc, gemm256_w.serial_result)) {
      std::printf("FAIL: gemm 256^3 result differs at %zu threads\n", n);
      return 1;
    }
    std::printf("%-36s %8zu %12.2f %8.2fx\n", gemm256_w.name, n,
                gemm256_s * 1e3, gemm256_w.serial_s / gemm256_s);
    points.push_back({"gemm_256", n, gemm256_s * 1e3,
                      gemm256_w.serial_s / gemm256_s,
                      gemm256_flops / gemm256_s * 1e-9});

    // Fresh layer per thread count with the same seed: identical weights,
    // so outputs are comparable bitwise.
    Rng lrng(7);
    Conv2d conv(3, 32, 3, 1, 1, lrng);
    Tensor dy = Tensor::zeros(Shape{16, 32, 32, 32});
    for (std::size_t i = 0; i < dy.numel(); i += 97) dy[i] = 1.0f;
    Tensor dx;
    const double conv_s = time_it([&] {
      for (Param* p : conv.params()) p->zero_grad();
      const Tensor y = conv.forward(cx, /*train=*/true);
      dx = conv.backward(dy);
    });
    if (n == 1) {
      conv_w.serial_s = conv_s;
      conv_w.serial_result = dx;
    } else if (!bitwise_equal(dx, conv_w.serial_result)) {
      std::printf("FAIL: conv result differs at %zu threads\n", n);
      return 1;
    }
    std::printf("%-36s %8zu %12.2f %8.2fx\n", conv_w.name, n, conv_s * 1e3,
                conv_w.serial_s / conv_s);
    points.push_back(
        {"conv_fwd_bwd", n, conv_s * 1e3, conv_w.serial_s / conv_s, 0.0});
  }

  std::printf("\nresults bitwise-identical across all thread counts: yes\n");

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"bench\":\"gemm\",\"hardware_threads\":" << hw
       << ",\"kernel\":\"" << gemm_kernel_name()
       << "\",\"deterministic\":true,\"points\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const JsonPoint& p = points[i];
      os << (i ? "," : "") << "{\"workload\":\"" << p.workload
         << "\",\"threads\":" << p.threads << ",\"median_ms\":" << p.median_ms
         << ",\"speedup\":" << p.speedup;
      if (p.gflops > 0.0) os << ",\"gflops\":" << p.gflops;
      os << "}";
    }
    os << "]}";
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_gemm: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << os.str() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
