// Fleet throughput benchmark: a fixed 3-chip / 6-job mix (the shape of the
// EXPERIMENTS.md fleet demo, shrunk to bench scale) driven to completion
// by the fleet scheduler, reporting jobs/min, epochs/min, and the exact
// queue-wait / completion-latency percentiles in scheduler steps.
//
// The step-denominated numbers (latency percentiles, slice/migration
// counts) are deterministic for a given job mix; the /min rates are wall
// clock and track machine speed — together they are the BENCH_fleet.json
// perf-trajectory record CI archives per commit (`--json PATH`).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/scheduler.hpp"

namespace {

using namespace remapd;

/// The benchmark's job mix: six small jobs across three policies and two
/// priorities — enough heterogeneity to exercise queueing (6 jobs on 3
/// chips) without pushing the bench past ~10 s.
std::vector<fleet::JobSpec> bench_jobs() {
  std::vector<fleet::JobSpec> jobs;
  const char* policies[] = {"remap-d", "static", "none"};
  for (std::size_t i = 0; i < 6; ++i) {
    fleet::JobSpec j;
    j.name = "job" + std::to_string(i);
    j.model = "resnet12";
    j.policy = policies[i % 3];
    j.epochs = 2;
    j.train = 48;
    j.test = 32;
    j.seed = 100 + i;
    j.priority = static_cast<int>(i % 2);
    jobs.push_back(std::move(j));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "bench_fleet: unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  fleet::ChipSpec chip;
  chip.name = "chip";
  // Mild wear so the health machinery is on the measured path.
  chip.wear_xbar_fraction = 0.02;
  chip.wear_cell_fraction = 0.002;

  fleet::ChipPool pool = fleet::ChipPool::homogeneous(3, chip);
  fleet::SchedulerConfig cfg;
  cfg.policy = fleet::SchedPolicy::kPriority;
  fleet::Scheduler scheduler(pool, cfg);
  for (fleet::JobSpec& j : bench_jobs()) scheduler.submit(std::move(j));

  const fleet::FleetSummary s = scheduler.run();
  std::printf("== Fleet throughput (3 chips, 6 jobs) ==\n\n");
  std::fputs(s.table().c_str(), stdout);
  if (s.completed != s.submitted) {
    std::printf("FAIL: %zu of %zu jobs did not complete\n",
                s.submitted - s.completed, s.submitted);
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_fleet: cannot write %s\n",
                   json_path.c_str());
      return 2;
    }
    out << "{\"bench\":\"fleet\",\"summary\":" << s.json() << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
