// §IV.C performance-overhead reproduction: the remapping traffic (Fig. 3's
// three phases, simulated flit-by-flit on the c-mesh) against one training
// epoch of NoC traffic. 50-round Monte Carlo with random fault sites.
//
// Paper: 0.22% average, 0.36% worst-case.

#include <cstdio>

#include "noc/traffic.hpp"
#include "obs/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main() {
  using namespace remapd;
  using namespace remapd::noc;

  NocConfig cfg;
  cfg.geometry = CmeshGeometry{8, 8};  // 64 tiles, 4x4 c-mesh routers
  const std::size_t flits = weight_transfer_flits(128, 128);

  // With REMAPD_HEALTH set, the simulated rounds' per-router utilization
  // lands in the health stream (type="noc" records) for offline heatmaps.
  obs::Observatory* ob =
      obs::enabled() ? &obs::Observatory::instance() : nullptr;
  if (ob) {
    obs::RunInfo info;
    info.model = "(none)";
    info.policy = "noc-overhead-bench";
    info.dataset = "(synthetic rounds)";
    info.tiles_x = cfg.geometry.tiles_x;
    info.tiles_y = cfg.geometry.tiles_y;
    info.xbar_rows = 128;
    info.xbar_cols = 128;
    ob->begin_run(info);
  }

  std::printf("== NoC remapping overhead (c-mesh %zux%zu tiles, %zux%zu "
              "routers) ==\n\n",
              cfg.geometry.tiles_x, cfg.geometry.tiles_y,
              cfg.geometry.routers_x(), cfg.geometry.routers_y());
  std::printf("weight transfer: 128x128x16b / 64b flits = %zu flits\n\n",
              flits);

  // The Fig. 3 walkthrough: two senders, several responders each.
  {
    const std::vector<NodeId> senders = {9, 54};
    const std::vector<std::vector<NodeId>> responders = {
        {2, 10, 17, 25}, {38, 46, 53, 61}};
    const std::vector<RemapPair> pairs = {{9, 10}, {54, 53}};
    const RemapTrafficResult res =
        simulate_remap_protocol(cfg, senders, responders, pairs, flits);
    if (ob) ob->noc().record_round(0, res);
    std::printf("Fig. 3 walkthrough (2 senders, parallel remaps):\n");
    std::printf("  phase (a) broadcast requests : %llu cycles\n",
                static_cast<unsigned long long>(res.request_cycles));
    std::printf("  phase (b) responses          : %llu cycles\n",
                static_cast<unsigned long long>(res.response_cycles));
    std::printf("  phase (c) weight exchange    : %llu cycles\n",
                static_cast<unsigned long long>(res.transfer_cycles));
    std::printf("  total: %llu cycles, %zu packets, %llu flit-hops\n\n",
                static_cast<unsigned long long>(res.total_cycles),
                res.packets,
                static_cast<unsigned long long>(res.flit_hops));
  }

  // Monte Carlo, 50 rounds as in the paper.
  Rng rng(77);
  const EpochTrafficModel epoch;
  const MonteCarloResult mc =
      monte_carlo_remap_overhead(cfg, 50, 4, flits, epoch, rng);

  CsvWriter csv("noc_overhead.csv");
  csv.header({"round", "overhead_percent"});
  for (std::size_t i = 0; i < mc.overhead_percent.size(); ++i)
    csv.row(i, mc.overhead_percent[i]);

  std::printf("Monte Carlo, 50 rounds, random fault sites:\n");
  std::printf("  epoch NoC budget : %llu cycles\n",
              static_cast<unsigned long long>(epoch.epoch_noc_cycles));
  std::printf("  mean overhead    : %.3f%%   (paper: 0.22%%)\n", mc.mean);
  std::printf("  worst overhead   : %.3f%%   (paper: 0.36%%)\n", mc.worst);
  std::printf("  stddev           : %.3f%%\n",
              stddev_of(mc.overhead_percent));
  std::printf("[noc] wrote noc_overhead.csv\n");

  // With REMAPD_TRACE/REMAPD_METRICS set, the flit/hop counters and the
  // per-round latency histogram of the 50 simulated rounds land here.
  if (telemetry::enabled())
    std::fputs(telemetry::summary_table().c_str(), stderr);
  return 0;
}
