// Fig. 5 reproduction: accuracy after training the five CNN models with 2%
// fault density injected only into the forward-phase crossbars vs only into
// the backward-phase crossbars (CIFAR-10-like data).
//
// Paper shape: forward-phase faults have very small impact; backward-phase
// faults cost up to ~45 points — gradients corrupted by stuck cells
// accumulate across weight updates.
//
// Scale via REMAPD_EPOCHS / REMAPD_TRAIN / REMAPD_TEST.

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"
#include "util/csv.hpp"

int main() {
  using namespace remapd;
  constexpr double kDensity = 0.02;
  const char* models[] = {"vgg11", "vgg16", "vgg19", "resnet12", "resnet18"};

  std::printf("== Fig. 5: forward vs backward fault tolerance (2%% density) "
              "==\n\n");
  std::printf("%-10s %8s %9s %9s %12s %12s\n", "model", "ideal", "forward",
              "backward", "fwd_loss", "bwd_loss");
  CsvWriter csv("fig5_phase_tolerance.csv");
  csv.header({"model", "ideal", "forward", "backward"});

  double fwd_loss_sum = 0.0, bwd_loss_sum = 0.0;
  for (const char* model : models) {
    TrainerConfig base = recommended_config(model);
    apply_env_overrides(base);

    TrainerConfig ideal = base;
    ideal.faults = FaultScenario::ideal();
    const double acc_ideal = train_with_faults(ideal).final_test_accuracy;

    TrainerConfig fwd = base;
    fwd.faults = FaultScenario::uniform(kDensity);
    fwd.fault_target = PhaseFaultTarget::kForwardOnly;
    const double acc_fwd = train_with_faults(fwd).final_test_accuracy;

    TrainerConfig bwd = base;
    bwd.faults = FaultScenario::uniform(kDensity);
    bwd.fault_target = PhaseFaultTarget::kBackwardOnly;
    const double acc_bwd = train_with_faults(bwd).final_test_accuracy;

    std::printf("%-10s %8.3f %9.3f %9.3f %11.1f%% %11.1f%%\n", model,
                acc_ideal, acc_fwd, acc_bwd, 100.0 * (acc_ideal - acc_fwd),
                100.0 * (acc_ideal - acc_bwd));
    csv.row(model, acc_ideal, acc_fwd, acc_bwd);
    fwd_loss_sum += acc_ideal - acc_fwd;
    bwd_loss_sum += acc_ideal - acc_bwd;
  }

  std::printf("\naverage accuracy loss: forward %.1f%%, backward %.1f%%\n",
              100.0 * fwd_loss_sum / 5.0, 100.0 * bwd_loss_sum / 5.0);
  std::printf("paper shape: backward >> forward (backward up to ~45%% loss, "
              "forward near-ideal)\n");
  std::printf("[fig5] wrote fig5_phase_tolerance.csv\n");
  return 0;
}
