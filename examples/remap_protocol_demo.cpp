// Walk through the Fig. 3 remapping protocol on the c-mesh NoC, phase by
// phase, with the same 4x4 tile mesh the figure illustrates:
//
//   (a) two sender tiles broadcast remap requests (XY-tree multicast),
//   (b) potential receiver tiles respond (unicast),
//   (c) each sender exchanges weights with its nearest responder —
//       both transfers in flight at once.

#include <cstdio>

#include "noc/traffic.hpp"

int main() {
  using namespace remapd;
  using namespace remapd::noc;

  NocConfig cfg;
  cfg.geometry = CmeshGeometry{4, 4};  // the Fig. 3 mesh
  const std::size_t flits = weight_transfer_flits(128, 128);

  // S1 = tile 5, S2 = tile 10 (interior tiles, as in the figure).
  const std::vector<NodeId> senders = {5, 10};
  const std::vector<std::vector<NodeId>> responders = {
      {0, 1, 4, 6},    // R1..R4 answer S1
      {11, 14, 15}};   // R5..R7 answer S2

  std::printf("== Fig. 3 dynamic remapping protocol on a 4x4 c-mesh ==\n\n");
  std::printf("senders: S1=tile %zu, S2=tile %zu\n", senders[0], senders[1]);

  // Each sender picks its nearest responder by hop count.
  std::vector<RemapPair> pairs;
  for (std::size_t i = 0; i < senders.size(); ++i) {
    NodeId best = responders[i].front();
    for (NodeId r : responders[i])
      if (cfg.geometry.hop_count(senders[i], r) <
          cfg.geometry.hop_count(senders[i], best))
        best = r;
    pairs.push_back(RemapPair{senders[i], best});
    std::printf("S at tile %2zu: %zu responders, nearest = tile %zu "
                "(%zu router hops)\n",
                senders[i], responders[i].size(), best,
                cfg.geometry.hop_count(senders[i], best));
  }

  const RemapTrafficResult res =
      simulate_remap_protocol(cfg, senders, responders, pairs, flits);

  std::printf("\nphase (a) broadcast requests : %6llu cycles "
              "(%zu-tile XY-tree multicast per sender)\n",
              static_cast<unsigned long long>(res.request_cycles),
              cfg.geometry.num_tiles() - 1);
  std::printf("phase (b) responses          : %6llu cycles\n",
              static_cast<unsigned long long>(res.response_cycles));
  std::printf("phase (c) weight exchange    : %6llu cycles "
              "(2x %zu flits per pair, pairs in parallel)\n",
              static_cast<unsigned long long>(res.transfer_cycles), flits);
  std::printf("total remap round            : %6llu cycles\n",
              static_cast<unsigned long long>(res.total_cycles));
  std::printf("traffic: %zu packets, %llu flit-hops\n\n", res.packets,
              static_cast<unsigned long long>(res.flit_hops));

  const EpochTrafficModel epoch;
  std::printf("against one training epoch (%llu NoC cycles): %.3f%% "
              "overhead (paper: 0.22%% average)\n",
              static_cast<unsigned long long>(epoch.epoch_noc_cycles),
              remap_overhead_percent(res, epoch));
  return 0;
}
