// Train a CNN of the zoo on a faulty RCS with a selectable fault-tolerance
// policy, printing the per-epoch history (loss, accuracy, BIST density
// survey, remap activity). This is the workload of the paper's Fig. 6, for
// one model/policy pair at a time.
//
// Usage: train_vgg_faulty [model] [policy] [epochs]
//   model   vgg11|vgg16|vgg19|resnet12|resnet18|squeezenet (default vgg16)
//   policy  none|an-code|static|remap-ws|remap-t-5|remap-t-10|remap-d
//           (default remap-d)

#include <cstdio>
#include <cstdlib>

#include "trainer/fault_aware_trainer.hpp"

int main(int argc, char** argv) {
  using namespace remapd;
  const std::string model = argc > 1 ? argv[1] : "vgg16";
  const std::string policy = argc > 2 ? argv[2] : "remap-d";

  TrainerConfig cfg = recommended_config(model);
  if (argc > 3) cfg.epochs = static_cast<std::size_t>(std::atoi(argv[3]));
  apply_env_overrides(cfg);
  cfg.policy = policy;
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);

  std::printf("== %s + %s on a faulty RCS ==\n", model.c_str(),
              policy.c_str());
  std::printf("pre-deployment: 20%% of crossbars at 0.4-1%% density, "
              "SA0:SA1 = 9:1, clustered\n");
  std::printf("post-deployment: %.2f%% new cells on %.1f%% of crossbars per "
              "epoch (time-compressed)\n\n",
              100.0 * cfg.faults.post_cell_fraction,
              100.0 * cfg.faults.post_xbar_fraction);

  FaultAwareTrainer trainer(cfg);
  std::printf("RCS: %zu tiles, %zu crossbars (%zux%zu), %zu mapped tasks\n\n",
              trainer.rcs().num_tiles(), trainer.rcs().total_crossbars(),
              cfg.xbar_size, cfg.xbar_size, trainer.mapper().num_tasks());

  const TrainResult r = trainer.run();
  std::printf("%6s %10s %10s %10s %8s %12s %10s\n", "epoch", "loss",
              "train_acc", "test_acc", "remaps", "mean_dens", "faults");
  for (const EpochRecord& e : r.history)
    std::printf("%6zu %10.4f %10.3f %10.3f %8zu %11.4f%% %10zu\n", e.epoch,
                e.train_loss, e.train_accuracy, e.test_accuracy, e.remaps,
                100.0 * e.mean_density_est, e.total_faults);

  std::printf("\nfinal accuracy: %.3f  (total remaps %zu, policy area "
              "overhead %.2f%%)\n",
              r.final_test_accuracy, r.total_remaps,
              r.policy_area_overhead_percent);
  return 0;
}
