// Inference-time fault study: train a model on ideal hardware, then deploy
// it onto progressively faultier crossbars and measure inference accuracy.
//
// Context for the paper's related work ([7], [17]): inference only
// exercises the forward crossbars, so it inherits the forward phase's
// fault tolerance — accuracy degrades far more gently than training
// does (compare Fig. 5's backward collapse).
//
// Usage: inference_faults [model]

#include <cstdio>

#include "trainer/fault_aware_trainer.hpp"

int main(int argc, char** argv) {
  using namespace remapd;
  const std::string model_name = argc > 1 ? argv[1] : "resnet12";

  // 1. Train to convergence on ideal hardware.
  TrainerConfig cfg = recommended_config(model_name);
  apply_env_overrides(cfg);
  cfg.faults = FaultScenario::ideal();
  FaultAwareTrainer trainer(cfg);
  const TrainResult r = trainer.run();
  std::printf("== inference-time faults on a trained %s ==\n\n",
              model_name.c_str());
  std::printf("trained accuracy on ideal hardware: %.3f\n\n",
              r.final_test_accuracy);

  // 2. Deploy onto faulty forward crossbars of increasing density and
  //    re-evaluate. Weights stay fixed: this is pure inference.
  SynthSpec spec = cfg.data;
  spec.seed = cfg.seed;
  const TrainTest data = make_synthetic(spec);
  Model& model = trainer.model();
  auto layers = model.faultable();

  std::printf("%12s %12s\n", "density", "accuracy");
  Rng rng(7);
  for (double density : {0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05}) {
    // Fresh fault pattern per density level on a dedicated RCS sized for
    // the model's forward + backward blocks.
    std::vector<std::pair<std::size_t, std::size_t>> dims;
    std::size_t blocks = 0;
    for (FaultableLayer* l : layers) {
      dims.emplace_back(l->weight_rows(), l->weight_cols());
      blocks += 2 * ((l->weight_rows() + 31) / 32) *
                ((l->weight_cols() + 31) / 32);
    }
    Rcs rcs(RcsConfig::sized_for(blocks, 32, 32));
    WeightMapper mapper(rcs);
    mapper.map_layers(dims);
    for (XbarId x = 0; x < rcs.total_crossbars(); ++x)
      rcs.crossbar(x).inject_random_faults(
          static_cast<std::size_t>(density * 32 * 32), 0.9, rng);

    for (std::size_t l = 0; l < layers.size(); ++l) {
      const float w_max =
          std::max(0.05f, layers[l]->weight_param().value.abs_max());
      layers[l]->set_fault_views(
          mapper.build_fault_view(l, Phase::kForward, w_max), FaultView{});
    }
    const double acc = evaluate_accuracy(model, data.test);
    std::printf("%11.1f%% %12.3f\n", 100.0 * density, acc);
  }
  for (FaultableLayer* l : layers) l->clear_fault_views();

  std::printf("\nnote the contrast with training-time forward faults "
              "(Fig. 5): a model *trained on* faulty\nforward crossbars "
              "adapts around the stuck weights and stays near-ideal at 2%% "
              "density,\nbut a model trained elsewhere and *deployed onto* "
              "faults cannot adapt — the motivation\nfor inference-time "
              "mitigation in [7], [17].\n");
  return 0;
}
