// BIST walkthrough: inject a clustered fault pattern into one 128x128
// crossbar, drive the Fig. 2 FSM cycle by cycle, and compare the density
// estimate the analog read-out produces against ground truth.

#include <cstdio>

#include "bist/controller.hpp"

int main() {
  using namespace remapd;

  Crossbar xb(128, 128);
  Rng rng(2023);
  xb.inject_clustered_faults(131, 0.9, 2, rng);  // ~0.8% density, clustered
  std::printf("== BIST demo on a 128x128 crossbar ==\n\n");
  std::printf("injected: %zu faults (%zu SA0, %zu SA1), density %.3f%%\n\n",
              xb.fault_count(), xb.fault_count(CellFault::kStuckAt0),
              xb.fault_count(CellFault::kStuckAt1),
              100.0 * xb.fault_density());

  // Drive the FSM manually to show the Fig. 2 state schedule.
  BistFsm fsm(xb.rows());
  fsm.start();
  std::printf("FSM schedule (state: cycles spent):\n");
  BistState prev = fsm.state();
  std::uint64_t entered = 0;
  while (!fsm.finished()) {
    const BistState worked = fsm.step();
    if (worked != prev) {
      std::printf("  %-12s: cycles %llu..%llu\n", bist_state_name(prev),
                  static_cast<unsigned long long>(entered + 1),
                  static_cast<unsigned long long>(fsm.cycles_elapsed() - 1));
      prev = worked;
      entered = fsm.cycles_elapsed() - 1;
    }
  }
  std::printf("  %-12s: cycles %llu..%llu\n", bist_state_name(prev),
              static_cast<unsigned long long>(entered + 1),
              static_cast<unsigned long long>(fsm.cycles_elapsed()));
  std::printf("total: %llu ReRAM cycles = %.1f us (paper: 260 cycles)\n\n",
              static_cast<unsigned long long>(fsm.cycles_elapsed()),
              static_cast<double>(fsm.cycles_elapsed()) * kReramCycleNs /
                  1000.0);

  // Full controller run: analog column reads + calibration.
  BistController bist;
  const BistReport rep = bist.run(xb);
  std::printf("BIST report:\n");
  std::printf("  SA1 estimate     : %zu (true %zu)\n", rep.sa1_estimate,
              xb.fault_count(CellFault::kStuckAt1));
  std::printf("  SA0 estimate     : %zu (true %zu)\n", rep.sa0_estimate,
              xb.fault_count(CellFault::kStuckAt0));
  std::printf("  density estimate : %.3f%% (true %.3f%%)\n",
              100.0 * rep.density_estimate, 100.0 * xb.fault_density());
  std::printf("\nonly the density leaves the BIST module — no per-cell "
              "locations, which is what keeps it at 0.61%% area overhead.\n");
  return 0;
}
