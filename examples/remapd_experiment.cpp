// General experiment runner: every knob of the fault-aware trainer behind
// command-line flags, with CSV output — the tool for running custom
// configurations beyond the prebuilt figure benches.
//
// Usage: remapd_experiment [--flag value]...
//   --model NAME        vgg11|vgg16|vgg19|resnet12|resnet18|squeezenet
//   --policy NAME       none|an-code|static|remap-ws|remap-t-5|remap-t-10|
//                       remap-d|refresh|xchangr|drop-connect
//   --fault-model NAME  saf|transient|ir-drop|saf+transient|saf+ir-drop|
//                       ideal — scenario
//                       preset (trainer/scenarios.hpp). Applied after every
//                       other flag and env override so the SAF wear rate is
//                       derived from the final epoch count; combine with
//                       REMAPD_UPSET_RATE / REMAPD_WIRE_OHMS for sweeps.
//   --list-policies     print the policy registry and exit
//   --list-fault-models print the fault-model registry and exit
//   --dataset NAME      cifar10|cifar100|svhn
//   --epochs N          training epochs (default 8)
//   --train N           training samples (default 256)
//   --test N            test samples (default 128)
//   --seed N            RNG seed (default 42)
//   --ideal             disable all faults
//   --pre-high PCT      high-band pre-deployment density, e.g. 1.0 (%)
//   --post-m PCT        new faulty cells per selected crossbar per epoch (%)
//   --post-n PCT        crossbars gaining faults per epoch (%)
//   --phase NAME        all|forward|backward (Fig. 5-style targeting)
//   --mapping NAME      single|differential
//   --cell-bits N       quantize cells to N-bit levels (1..4; default fp32)
//   --quant-noise S     programming-noise sigma in level units (default 0)
//   --int8              route layer MVMs through the int8 GEMM fast path
//                       (requires --cell-bits)
//   --csv PATH          append per-epoch records to a CSV file
//   --checkpoint PATH   save a checkpoint here (default: every epoch)
//   --checkpoint-every N  save every N epochs instead
//   --stop-after N      stop cleanly after N epochs (for interrupt tests)
//   --resume PATH       restore a checkpoint and continue the run; the
//                       other flags must match the interrupted leg exactly

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "telemetry/telemetry.hpp"
#include "trainer/fault_aware_trainer.hpp"
#include "trainer/scenarios.hpp"
#include "util/csv.hpp"

namespace {

using namespace remapd;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "remapd_experiment: %s (see header for flags)\n", msg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  TrainerConfig cfg = recommended_config("resnet12");
  cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
  std::string csv_path;
  std::string fault_model;
  bool ideal = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--list-policies") {
      for (const PolicySpec& s : policy_registry())
        std::printf("%-12s %s\n", s.name.c_str(), s.summary.c_str());
      return 0;
    } else if (flag == "--list-fault-models") {
      for (const FaultModelSpec& s : fault_model_registry())
        std::printf("%-14s %s\n", s.name.c_str(), s.summary.c_str());
      return 0;
    } else if (flag == "--fault-model") {
      fault_model = next();  // applied last, once epochs are final
    } else if (flag == "--model") {
      cfg = recommended_config(next());
      cfg.faults = FaultScenario::paper_default_compressed(cfg.epochs);
    } else if (flag == "--policy") {
      cfg.policy = next();
    } else if (flag == "--dataset") {
      const std::string d = next();
      if (d == "cifar10") cfg.data.kind = SynthKind::kCifar10;
      else if (d == "cifar100") cfg.data.kind = SynthKind::kCifar100;
      else if (d == "svhn") cfg.data.kind = SynthKind::kSvhn;
      else usage("unknown dataset");
    } else if (flag == "--epochs") {
      cfg.epochs = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--train") {
      cfg.data.train = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--test") {
      cfg.data.test = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--ideal") {
      ideal = true;
    } else if (flag == "--pre-high") {
      cfg.faults.high_density_hi = std::atof(next()) / 100.0;
      cfg.faults.high_density_lo = cfg.faults.high_density_hi * 0.4;
    } else if (flag == "--post-m") {
      cfg.faults.post_cell_fraction = std::atof(next()) / 100.0;
    } else if (flag == "--post-n") {
      cfg.faults.post_xbar_fraction = std::atof(next()) / 100.0;
    } else if (flag == "--phase") {
      const std::string p = next();
      if (p == "all") cfg.fault_target = PhaseFaultTarget::kAll;
      else if (p == "forward") cfg.fault_target = PhaseFaultTarget::kForwardOnly;
      else if (p == "backward") cfg.fault_target = PhaseFaultTarget::kBackwardOnly;
      else usage("unknown phase");
    } else if (flag == "--mapping") {
      const std::string m = next();
      if (m == "single") cfg.mapping = MappingMode::kSingleArrayBias;
      else if (m == "differential") cfg.mapping = MappingMode::kDifferentialPair;
      else usage("unknown mapping");
    } else if (flag == "--cell-bits") {
      cfg.quant.enabled = true;
      cfg.quant.cell_bits = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--quant-noise") {
      cfg.quant.program_noise_sigma = std::atof(next());
    } else if (flag == "--int8") {
      cfg.quant.int8_gemm = true;
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--checkpoint") {
      cfg.checkpoint_path = next();
      if (cfg.checkpoint_every == 0) cfg.checkpoint_every = 1;
    } else if (flag == "--checkpoint-every") {
      cfg.checkpoint_every = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--stop-after") {
      cfg.stop_after_epochs = static_cast<std::size_t>(std::atoi(next()));
    } else if (flag == "--resume") {
      cfg.resume_from = next();
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (ideal) cfg.faults = FaultScenario::ideal();
  if (cfg.quant.int8_gemm && !cfg.quant.enabled)
    usage("--int8 requires --cell-bits");
  try {
    cfg.quant.validate();
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  apply_env_overrides(cfg);
  if (!fault_model.empty()) {
    try {
      apply_fault_model(cfg, fault_model);
    } catch (const std::invalid_argument& e) {
      usage(e.what());
    }
  }

  std::printf("model=%s policy=%s dataset=%s epochs=%zu seed=%llu\n",
              cfg.model.c_str(), cfg.policy.c_str(),
              synth_name(cfg.data.kind), cfg.epochs,
              static_cast<unsigned long long>(cfg.seed));
  if (cfg.quant.enabled)
    std::printf("quant: cell_bits=%zu noise=%g int8=%d\n",
                cfg.quant.cell_bits, cfg.quant.program_noise_sigma,
                cfg.quant.int8_gemm ? 1 : 0);

  const TrainResult r = train_with_faults(cfg);
  std::printf("%6s %10s %10s %10s %8s %10s %10s %8s %10s\n", "epoch", "loss",
              "train_acc", "test_acc", "remaps", "faults", "new_faults",
              "upsets", "refreshed");
  for (const EpochRecord& e : r.history)
    std::printf("%6zu %10.4f %10.3f %10.3f %8zu %10zu %10zu %8zu %10zu\n",
                e.epoch, e.train_loss, e.train_accuracy, e.test_accuracy,
                e.remaps, e.total_faults, e.new_faults, e.live_upsets,
                e.refreshed_cells);
  std::printf("final accuracy %.3f, total remaps %zu\n",
              r.final_test_accuracy, r.total_remaps);

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    csv.header({"model", "policy", "dataset", "epoch", "loss", "train_acc",
                "test_acc", "remaps", "faults", "new_faults", "new_upsets",
                "live_upsets", "refreshed_cells", "refresh_cycles",
                "cell_bits", "int8"});
    const std::size_t cell_bits = cfg.quant.enabled ? cfg.quant.cell_bits : 0;
    for (const EpochRecord& e : r.history)
      csv.row(cfg.model, cfg.policy, synth_name(cfg.data.kind), e.epoch,
              e.train_loss, e.train_accuracy, e.test_accuracy, e.remaps,
              e.total_faults, e.new_faults, e.new_upsets, e.live_upsets,
              e.refreshed_cells, e.refresh_cycles, cell_bits,
              cfg.quant.int8_gemm ? 1 : 0);
    std::printf("wrote %s\n", csv_path.c_str());
  }

  // Per-span timings and counters for this run (REMAPD_TRACE /
  // REMAPD_METRICS additionally dump machine-readable files at exit).
  if (telemetry::enabled())
    std::fputs(telemetry::summary_table().c_str(), stderr);
  // With REMAPD_HEALTH set the observatory dumps the JSONL stream + summary
  // at exit; echo the summary here too so interactive runs see it.
  if (obs::enabled())
    std::fputs(obs::Observatory::instance().summary().c_str(), stderr);
  return 0;
}
