// Quickstart: train a small CNN on a faulty RCS with and without Remap-D.
//
// Demonstrates the library's central result in one page: with clustered
// pre-deployment faults plus per-epoch wear-out, unprotected training
// collapses while Remap-D stays near the fault-free ideal.
//
// Usage: quickstart [model] [epochs]
//   model  one of vgg11|vgg16|vgg19|resnet12|resnet18|squeezenet
//          (default resnet12)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trainer/fault_aware_trainer.hpp"

int main(int argc, char** argv) {
  using namespace remapd;

  TrainerConfig base;
  base.model = argc > 1 ? argv[1] : "resnet12";
  base.epochs = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
  base.data.train = 256;
  base.data.test = 128;
  apply_env_overrides(base);

  std::printf("== Remap-D quickstart: %s, %zu epochs ==\n",
              base.model.c_str(), base.epochs);

  // 1. Fault-free ideal.
  TrainerConfig ideal = base;
  ideal.faults = FaultScenario::ideal();
  ideal.policy = "none";
  const TrainResult r_ideal = train_with_faults(ideal);
  std::printf("ideal hardware      : accuracy %.3f\n",
              r_ideal.final_test_accuracy);

  // 2. Faulty RCS, no protection.
  TrainerConfig faulty = base;
  faulty.faults = FaultScenario::paper_default();
  faulty.policy = "none";
  const TrainResult r_none = train_with_faults(faulty);
  std::printf("faulty, unprotected : accuracy %.3f\n",
              r_none.final_test_accuracy);

  // 3. Faulty RCS with Remap-D.
  TrainerConfig remap = faulty;
  remap.policy = "remap-d";
  const TrainResult r_remap = train_with_faults(remap);
  std::printf("faulty + Remap-D    : accuracy %.3f (%zu task remaps)\n",
              r_remap.final_test_accuracy, r_remap.total_remaps);

  std::printf("\naccuracy loss unprotected: %+.3f\n",
              r_ideal.final_test_accuracy - r_none.final_test_accuracy);
  std::printf("accuracy loss Remap-D    : %+.3f\n",
              r_ideal.final_test_accuracy - r_remap.final_test_accuracy);
  return 0;
}
